(* Multicore sharding: the bounded hand-off ring (qcheck: no fd lost,
   none delivered twice, occupancy bounded), concurrent Budget
   accounting (qcheck: parallel charge/release conserves the total,
   shed never over-frees), and the Sharded server end to end — both
   accept strategies, per-shard + aggregate telemetry, and the
   text/JSON no-drift rule for the sharding block.  Runs real domains
   and loopback sockets. *)

module Server = Flash_live.Server
module Client = Flash_live.Client
module Handoff = Flash_live.Handoff
module Budget = Flash_cache.Budget
module Guard = Flash_guard.Guard
open Test_status

(* ------------------------------------------------------------------ *)
(* Hand-off ring                                                       *)
(* ------------------------------------------------------------------ *)

let test_ring_basics () =
  (* The capacity-1 degenerate case must be rounded up, not allowed:
     with one slot every push would claim the ticket and overwrite an
     unconsumed element (regression — this once hung the qcheck below
     whenever it drew capacity 1, the consumer waiting forever for
     overwritten items). *)
  let tiny = Handoff.create ~capacity:1 in
  Alcotest.(check int) "minimum capacity is 2" 2 (Handoff.capacity tiny);
  Alcotest.(check bool) "tiny push 1" true (Handoff.push tiny 1);
  Alcotest.(check bool) "tiny push 2" true (Handoff.push tiny 2);
  Alcotest.(check bool) "tiny full refused" false (Handoff.push tiny 3);
  Alcotest.(check (option int)) "tiny fifo 1" (Some 1) (Handoff.pop tiny);
  Alcotest.(check (option int)) "tiny fifo 2" (Some 2) (Handoff.pop tiny);
  let r = Handoff.create ~capacity:3 in
  Alcotest.(check int) "capacity rounds up" 4 (Handoff.capacity r);
  Alcotest.(check (option int)) "empty pops None" None (Handoff.pop r);
  for i = 1 to 4 do
    Alcotest.(check bool) "push fits" true (Handoff.push r i)
  done;
  Alcotest.(check bool) "full push refused" false (Handoff.push r 5);
  Alcotest.(check int) "length at capacity" 4 (Handoff.length r);
  (* FIFO when single-threaded. *)
  List.iter
    (fun want -> Alcotest.(check (option int)) "fifo" (Some want) (Handoff.pop r))
    [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "drained" None (Handoff.pop r);
  (* Slots recycle across laps. *)
  for lap = 1 to 3 do
    Alcotest.(check bool) "lap push" true (Handoff.push r lap);
    Alcotest.(check (option int)) "lap pop" (Some lap) (Handoff.pop r)
  done

(* One producer domain pushes 0..n-1 (spinning when the ring is full);
   [consumers] domains pop until all items are out.  Every item must
   arrive exactly once, and no observation may exceed the capacity.

   The waits must be cooperative, not hard spins: on a box with fewer
   cores than domains, a domain spinning on a peer's progress can hold
   the only core through entire scheduler timeslices while the peer —
   or a stop-the-world barrier waiting on it — starves, livelocking
   the property.  A short relax followed by a real sleep (a blocking
   section, so the GC never waits on a sleeper) keeps the ring under
   contention while letting starved peers run.  Production code never
   spins on the ring — a full push sheds the connection, and shards
   pop once per wake-pipe poke — so the hazard is purely the test's. *)
let ring_arbitrary =
  QCheck.(
    triple (int_range 1 300) (* items *)
      (int_range 1 32) (* requested capacity *)
      (int_range 1 3) (* consumer domains, capped by the core count *))

let cooperative_relax tries =
  incr tries;
  if !tries land 63 = 0 then Unix.sleepf 0.0002 else Domain.cpu_relax ()

let prop_ring_delivers_exactly_once (items, capacity, consumers) =
  let consumers =
    max 1 (min consumers (Domain.recommended_domain_count () - 1))
  in
  let ring = Handoff.create ~capacity in
  let received = Atomic.make 0 in
  let over_occupancy = Atomic.make false in
  let producer =
    Domain.spawn (fun () ->
        let tries = ref 0 in
        for i = 0 to items - 1 do
          while not (Handoff.push ring i) do
            cooperative_relax tries
          done;
          if Handoff.length ring > Handoff.capacity ring then
            Atomic.set over_occupancy true
        done)
  in
  let consumer_domains =
    List.init consumers (fun _ ->
        Domain.spawn (fun () ->
            let got = ref [] in
            let tries = ref 0 in
            let rec loop () =
              if Atomic.get received < items then begin
                (match Handoff.pop ring with
                | Some v ->
                    got := v :: !got;
                    ignore (Atomic.fetch_and_add received 1)
                | None -> cooperative_relax tries);
                loop ()
              end
            in
            loop ();
            !got))
  in
  Domain.join producer;
  let all = List.concat_map Domain.join consumer_domains in
  let sorted = List.sort compare all in
  sorted = List.init items Fun.id && not (Atomic.get over_occupancy)

(* ------------------------------------------------------------------ *)
(* Concurrent Budget accounting                                        *)
(* ------------------------------------------------------------------ *)

(* Parallel paired charge/release from several domains: the pool must
   conserve the total exactly (end at zero) and never go negative. *)
let budget_arbitrary =
  QCheck.(pair (int_range 2 4) (small_list (int_range 1 1000)))

let prop_budget_conserves (domains, amounts) =
  QCheck.assume (amounts <> []);
  let b = Budget.create ~bytes:max_int in
  let negative_seen = Atomic.make false in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            List.iter
              (fun amount ->
                Budget.charge b amount;
                if Budget.used b < 0 then Atomic.set negative_seen true;
                Budget.release b amount)
              amounts))
  in
  List.iter Domain.join workers;
  Budget.used b = 0 && not (Atomic.get negative_seen)

(* Shedding under contention: members mirror their resident bytes in
   atomics, shed releases exactly what a charge added — so whatever
   interleaving happens, the pool must equal the members' total at the
   end (a shed that over-freed would leave it below, a lost release
   above), and rebalance must land at or under capacity while anything
   is sheddable. *)
let shed_arbitrary = QCheck.(pair (int_range 2 4) (int_range 10 80))

let prop_budget_shed_exact (domains, ops) =
  let chunk = 100 in
  let cap = chunk * 5 in
  let b = Budget.create ~bytes:cap in
  let members =
    List.init domains (fun i ->
        let resident = Atomic.make 0 in
        Budget.register b
          ~name:(Printf.sprintf "m%d" i)
          ~usage:(fun () -> Atomic.get resident)
          ~shed:(fun () ->
            (* Pop one chunk if this member holds one. *)
            let rec try_shed () =
              let cur = Atomic.get resident in
              if cur < chunk then false
              else if Atomic.compare_and_set resident cur (cur - chunk) then begin
                Budget.release b chunk;
                true
              end
              else try_shed ()
            in
            try_shed ());
        resident)
  in
  let workers =
    List.mapi
      (fun _ resident ->
        Domain.spawn (fun () ->
            for _ = 1 to ops do
              ignore (Atomic.fetch_and_add resident chunk);
              Budget.charge b chunk
            done))
      members
  in
  List.iter Domain.join workers;
  Budget.rebalance b;
  let total = List.fold_left (fun a r -> a + Atomic.get r) 0 members in
  Budget.used b = total && Budget.used b >= 0 && Budget.used b <= cap

(* ------------------------------------------------------------------ *)
(* The sharded server                                                  *)
(* ------------------------------------------------------------------ *)

let with_sharded ?(force_handoff = false) ?cache_budget_bytes ?guard n f =
  let docroot = Test_live.make_docroot () in
  let base = Server.default_config ~docroot in
  let config =
    {
      base with
      Server.mode = Server.Sharded n;
      force_handoff;
      cache_budget_bytes;
      guard = Option.value guard ~default:base.Server.guard;
    }
  in
  with_config config f

let drive port n =
  for _ = 1 to n do
    let r = get port "/hello.txt" in
    Alcotest.(check int) "hello 200" 200 r.Client.status;
    Alcotest.(check string) "hello body" "hello live world" r.Client.body
  done

let check_sharding_block server j ~domains =
  let strategy =
    match Server.sharding_info server with
    | Some (_, s) -> s
    | None -> Alcotest.fail "sharded server reports no sharding_info"
  in
  let sharding = member "sharding" j in
  Alcotest.(check int) "domains" domains (to_int (member "domains" sharding));
  Alcotest.(check string)
    "accept strategy" strategy
    (to_str (member "accept" sharding));
  let shards =
    match member "shards" sharding with
    | Arr l -> l
    | _ -> Alcotest.fail "sharding.shards not an array"
  in
  Alcotest.(check int) "shard entries" domains (List.length shards);
  List.iteri
    (fun i sh ->
      Alcotest.(check int) "shard id" i (to_int (member "shard" sh));
      Alcotest.(check bool)
        "backend named" true
        (String.length (to_str (member "backend" sh)) > 0))
    shards;
  (* The aggregate is the per-shard sum, read in the same snapshot. *)
  let sum =
    List.fold_left (fun a sh -> a + to_int (member "requests" sh)) 0 shards
  in
  Alcotest.(check int) "aggregate = sum of shards" sum
    (to_int (member "requests" j))

let test_sharded_reuseport () =
  with_sharded 2 (fun server port ->
      drive port 12;
      let stats = await_stats server (fun s -> s.Server.requests >= 12) in
      Alcotest.(check bool)
        "stats aggregate requests" true
        (stats.Server.requests >= 12);
      Alcotest.(check bool)
        "stats aggregate connections" true
        (stats.Server.connections >= 12);
      let j = get_status_json port in
      check_sharding_block server j ~domains:2;
      Alcotest.(check string)
        "mode string" "sharded:2"
        (to_str (member "mode" j)))

let test_sharded_handoff () =
  with_sharded ~force_handoff:true 2 (fun server port ->
      (match Server.sharding_info server with
      | Some (2, "handoff") -> ()
      | Some (n, s) -> Alcotest.failf "expected 2/handoff, got %d/%s" n s
      | None -> Alcotest.fail "no sharding_info");
      drive port 12;
      let stats = await_stats server (fun s -> s.Server.requests >= 12) in
      Alcotest.(check bool)
        "handoff served all" true
        (stats.Server.requests >= 12);
      let j = get_status_json port in
      check_sharding_block server j ~domains:2)

let test_sharded_shared_budget () =
  (* One Budget.t across both shards' caches: foreign-shard sheds run
     behind the shared cache lock, and the server keeps serving. *)
  with_sharded ~cache_budget_bytes:(64 * 1024) 2 (fun server port ->
      for _ = 1 to 6 do
        Alcotest.(check int) "index" 200 (get port "/index.html").Client.status;
        Alcotest.(check int) "hello" 200 (get port "/hello.txt").Client.status;
        Alcotest.(check int) "big" 200 (get port "/big.bin").Client.status
      done;
      let stats = await_stats server (fun s -> s.Server.requests >= 18) in
      Alcotest.(check bool) "all served" true (stats.Server.requests >= 18))

(* /metrics of a sharded server: strictly valid exposition, per-shard
   series under the shard label, and the unlabeled aggregate equal to
   the per-shard sum at snapshot. *)
let test_sharded_metrics () =
  with_sharded 2 (fun server port ->
      drive port 10;
      ignore (await_stats server (fun s -> s.Server.requests >= 10));
      let r = get port "/metrics" in
      Alcotest.(check int) "metrics 200" 200 r.Client.status;
      (match Obs.Exposition.validate r.Client.body with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "sharded exposition invalid: %s" msg);
      let lines = String.split_on_char '\n' r.Client.body in
      let requests_value line =
        match String.index_opt line ' ' with
        | Some i ->
            int_of_float
              (float_of_string
                 (String.sub line (i + 1) (String.length line - i - 1)))
        | None -> Alcotest.failf "unparseable sample line %S" line
      in
      let starts_with prefix l =
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix
      in
      let aggregate = ref None and shards = ref [] in
      List.iter
        (fun l ->
          if starts_with "flash_http_requests_total{shard=" l then
            shards := requests_value l :: !shards
          else if starts_with "flash_http_requests_total " l then
            aggregate := Some (requests_value l))
        lines;
      Alcotest.(check int) "one series per shard" 2 (List.length !shards);
      match !aggregate with
      | None -> Alcotest.fail "aggregate flash_http_requests_total missing"
      | Some agg ->
          Alcotest.(check int)
            "aggregate equals shard sum"
            (List.fold_left ( + ) 0 !shards)
            agg)

(* The PR 7 no-drift rule extended to sharded views: the text page's
   metrics section and the JSON "metrics" object list the same keys in
   the same order — shard-labeled and aggregate rows included. *)
let test_sharded_views_never_drift () =
  with_sharded 2 (fun _server port ->
      drive port 4;
      let text = (get port "/server-status").Client.body in
      let j = get_status_json port in
      let json_keys =
        match member "metrics" j with
        | Obj kv -> List.map fst kv
        | _ -> Alcotest.fail "metrics not an object"
      in
      let text_keys =
        let lines = String.split_on_char '\n' text in
        let rec after_header = function
          | [] -> []
          | "metrics:" :: rest -> rest
          | _ :: rest -> after_header rest
        in
        List.filter_map
          (fun line ->
            if String.length line > 2 && String.sub line 0 2 = "  " then
              let body = String.sub line 2 (String.length line - 2) in
              match String.rindex_opt body ' ' with
              | Some i -> Some (String.sub body 0 i)
              | None -> None
            else None)
          (after_header lines)
      in
      Alcotest.(check (list string))
        "text and JSON metrics agree" json_keys text_keys;
      (* And the text view carries the sharding lines. *)
      Alcotest.(check bool)
        "text sharding line" true
        (Helpers.contains text ~affix:"sharding:     2 domains");
      Alcotest.(check bool)
        "text per-shard lines" true
        (Helpers.contains text ~affix:"shard 0:"
        && Helpers.contains text ~affix:"shard 1:"))

(* The HTTP/1.1 conformance matrix extended to Sharded: the same wire
   bytes as AMPED for the whole torture table.  Lives here rather than
   in test_http11 because this suite must run last — OCaml 5 forbids
   Unix.fork once any domain has ever been spawned, so the MP entries
   of the matrix (and every other fork test) must precede the first
   Domain.spawn in the binary. *)
let test_sharded_byte_identity () =
  Test_http11.byte_identity_against_amped
    [ ("SHARDED", Server.Sharded 2) ]

(* ------------------------------------------------------------------ *)
(* Guard × sharding                                                    *)
(* ------------------------------------------------------------------ *)

(* Issue a one-shot GET, tolerating the guard's own refusals while a
   freed connection slot propagates (disconnects are processed
   asynchronously by the owning shard). *)
let rec get_admitted ?(tries = 40) port path =
  match get port path with
  | r when r.Client.status = 200 -> r
  | r when tries = 0 -> r
  | _ ->
      Thread.delay 0.05;
      get_admitted ~tries:(tries - 1) port path
  | exception e ->
      if tries = 0 then raise e
      else begin
        Thread.delay 0.05;
        get_admitted ~tries:(tries - 1) port path
      end

(* Each shard owns its own guard: with a per-peer cap of one connection
   and two shards, six silent connections from one peer can hold at most
   two slots (one per shard, fewer if the kernel hashes them onto the
   same shard) — everyone else is answered 429 at the door.  Closing the
   holders frees the slots. *)
let test_sharded_guard_conn_cap () =
  with_sharded
    ~guard:{ Guard.default_config with Guard.max_conns_per_ip = Some 1 }
    2
    (fun _server port ->
      let fds =
        List.init 6 (fun _ ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
            fd)
      in
      (* Let every shard write its verdict: refused fds now hold a 429
         response and EOF; admitted ones are silent. *)
      Thread.delay 0.5;
      let buf = Bytes.create 4096 in
      let refused =
        List.fold_left
          (fun acc fd ->
            Unix.set_nonblock fd;
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> acc + 1
            | n ->
                let payload = Bytes.sub_string buf 0 n in
                Alcotest.(check bool)
                  "refusal is a 429" true
                  (Helpers.contains payload ~affix:" 429 Too Many Requests");
                Alcotest.(check bool)
                  "refusal advises Retry-After" true
                  (Helpers.contains payload ~affix:"Retry-After:");
                acc + 1
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                acc
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> acc + 1)
          0 fds
      in
      Alcotest.(check bool)
        (Printf.sprintf "at most one slot per shard (refused %d of 6)" refused)
        true (refused >= 4);
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds;
      (* Slots free once the owning shards process the disconnects. *)
      let r = get_admitted port "/hello.txt" in
      Alcotest.(check int) "slot freed after close" 200 r.Client.status)

(* Guard telemetry under sharding: flash_guard_* series carry the shard
   label, the unlabeled aggregate equals the per-shard sum in the same
   scrape, and the status JSON's guard block agrees with itself (its
   shed dict sums to its shed_total). *)
let test_sharded_guard_metrics () =
  with_sharded
    ~guard:{ Guard.default_config with Guard.max_conns_per_ip = Some 1 }
    2
    (fun _server port ->
      (* Provoke a few conn-cap sheds: pairs of simultaneous silent
         connections from one peer, second of the pair refused whenever
         both hash to the same shard's singleton slot. *)
      let provoke () =
        let fds =
          List.init 4 (fun _ ->
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
              fd)
        in
        Thread.delay 0.3;
        List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds
      in
      provoke ();
      let metrics = (get_admitted port "/metrics").Client.body in
      (match Obs.Exposition.validate metrics with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "guarded sharded exposition invalid: %s" msg);
      let lines = String.split_on_char '\n' metrics in
      let sample_value line =
        match String.rindex_opt line ' ' with
        | Some i ->
            int_of_float
              (float_of_string
                 (String.sub line (i + 1) (String.length line - i - 1)))
        | None -> Alcotest.failf "unparseable sample line %S" line
      in
      let shard_sum = ref 0
      and aggregate = ref 0
      and shard_series = ref 0 in
      List.iter
        (fun l ->
          if String.starts_with ~prefix:"flash_guard_shed_total{" l then
            if Helpers.contains l ~affix:"shard=" then begin
              incr shard_series;
              shard_sum := !shard_sum + sample_value l
            end
            else aggregate := !aggregate + sample_value l)
        lines;
      (* Two shards times eight pre-registered reasons. *)
      Alcotest.(check int) "shard-labeled shed series" 16 !shard_series;
      Alcotest.(check int) "aggregate equals per-shard sum" !shard_sum
        !aggregate;
      Alcotest.(check bool) "sheds recorded" true (!shard_sum >= 1);
      Alcotest.(check bool)
        "state gauge carries the shard label" true
        (Helpers.contains metrics ~affix:"flash_guard_state{shard=");
      (* The serving shard's guard block is internally consistent.
         Fetch via [get_admitted]: the provoking peer's freed conn slot
         propagates asynchronously, so a prompt fetch can still be 429. *)
      let j = parse_json (get_admitted port "/server-status?json").Client.body in
      let guard = member "guard" j in
      (match guard with
      | Null -> Alcotest.fail "sharded guard JSON block missing"
      | _ -> ());
      let shed_kvs =
        match member "shed" guard with
        | Obj kv -> kv
        | _ -> Alcotest.fail "guard.shed not an object"
      in
      Alcotest.(check int) "shed dict sums to shed_total"
        (to_int (member "shed_total" guard))
        (List.fold_left (fun a (_, v) -> a + to_int v) 0 shed_kvs))

(* Unsharded servers must say so, in both views. *)
let test_unsharded_views () =
  let docroot = Test_live.make_docroot () in
  with_config (Server.default_config ~docroot) (fun server port ->
      Alcotest.(check (option (pair int string)))
        "no sharding_info" None
        (Server.sharding_info server);
      let j = get_status_json port in
      (match member "sharding" j with
      | Null -> ()
      | _ -> Alcotest.fail "unsharded JSON sharding should be null");
      let text = (get port "/server-status").Client.body in
      Alcotest.(check bool)
        "text says none" true
        (Helpers.contains text ~affix:"sharding:     none"))

let suite =
  [
    Alcotest.test_case "hand-off ring basics" `Quick test_ring_basics;
    Helpers.qcheck_case ~count:30 ~name:"ring delivers exactly once"
      ring_arbitrary prop_ring_delivers_exactly_once;
    Helpers.qcheck_case ~count:30 ~name:"budget conserves under domains"
      budget_arbitrary prop_budget_conserves;
    Helpers.qcheck_case ~count:20 ~name:"budget shed never over-frees"
      shed_arbitrary prop_budget_shed_exact;
    Alcotest.test_case "sharded serves over reuseport" `Quick
      test_sharded_reuseport;
    Alcotest.test_case "sharded serves over hand-off ring" `Quick
      test_sharded_handoff;
    Alcotest.test_case "shards share one cache budget" `Quick
      test_sharded_shared_budget;
    Alcotest.test_case "sharded /metrics validates and aggregates" `Quick
      test_sharded_metrics;
    Alcotest.test_case "sharded views never drift" `Quick
      test_sharded_views_never_drift;
    Alcotest.test_case "HTTP/1.1 byte-identity vs AMPED" `Quick
      test_sharded_byte_identity;
    Alcotest.test_case "per-shard guard enforces conn caps" `Quick
      test_sharded_guard_conn_cap;
    Alcotest.test_case "sharded guard metrics aggregate" `Quick
      test_sharded_guard_metrics;
    Alcotest.test_case "unsharded views say none" `Quick test_unsharded_views;
  ]
