(* Request-lifecycle tracing: unit and property tests of the Obs.Trace
   collector (ring buffer, nesting, binary framing, Chrome JSON) plus
   live integration across the four architectures — the disk-read span
   must land on the helper track under AMPED and on the main loop under
   SPED, MP children must stitch over the stats pipe, and /server-trace
   must serve parseable Chrome trace-event JSON everywhere. *)

module Server = Flash_live.Server
module Client = Flash_live.Client
module Trace = Obs.Trace

(* A collector on a hand-cranked clock. *)
let mk ?(capacity = 4) ?(max_spans = 8) () =
  let now = ref 0.0 in
  let t = Trace.create ~clock:(fun () -> !now) ~capacity ~max_spans () in
  (t, now)

let tick now dt = now := !now +. dt

(* ------------------------------------------------------------------ *)
(* Ring-buffer properties                                              *)
(* ------------------------------------------------------------------ *)

let prop_ring_capacity =
  QCheck.Test.make ~count:200 ~name:"ring keeps the newest <= capacity traces"
    QCheck.(pair (int_range 0 20) (int_range 1 8))
    (fun (n, cap) ->
      let now = ref 0.0 in
      let t = Trace.create ~clock:(fun () -> !now) ~capacity:cap () in
      for i = 0 to n - 1 do
        let tr = Trace.start t ~label:(Printf.sprintf "req-%d" i) () in
        tick now 1.0;
        ignore (Trace.finish t tr)
      done;
      let snap = Trace.snapshot t in
      List.length snap = min n cap
      && Trace.completed t = n
      && Trace.evicted t = max 0 (n - cap)
      && (* FIFO eviction: the survivors are the newest, oldest first. *)
      List.map (fun (d : Trace.trace_data) -> d.Trace.label) snap
         = List.init (min n cap) (fun i ->
               Printf.sprintf "req-%d" (n - min n cap + i)))

let prop_span_bound =
  QCheck.Test.make ~count:200 ~name:"per-trace span count is bounded"
    QCheck.(pair (int_range 0 30) (int_range 1 10))
    (fun (n, bound) ->
      let now = ref 0.0 in
      let t = Trace.create ~clock:(fun () -> !now) ~max_spans:bound () in
      let tr = Trace.start t () in
      for i = 0 to n - 1 do
        let sp = Trace.begin_span t tr (Printf.sprintf "s%d" i) in
        tick now 0.5;
        Trace.end_span t sp
      done;
      let d = Trace.finish t tr in
      List.length d.Trace.spans <= bound
      && d.Trace.truncated = max 0 (n - bound)
      && List.length d.Trace.spans + d.Trace.truncated = n)

(* Random begin/end sequences: whatever the interleaving, finished
   traces are well-formed — spans have t_start <= t_stop within the
   trace window, and depths are non-negative. *)
let prop_well_formed =
  let op = QCheck.Gen.(frequency [ (3, return `Begin); (2, return `End) ]) in
  QCheck.Test.make ~count:300 ~name:"random begin/end yields well-formed spans"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 40) op))
    (fun ops ->
      let now = ref 0.0 in
      let t = Trace.create ~clock:(fun () -> !now) ~max_spans:64 () in
      let tr = Trace.start t () in
      let stack = ref [] in
      List.iteri
        (fun i o ->
          tick now 1.0;
          match o with
          | `Begin -> stack := Trace.begin_span t tr (Printf.sprintf "s%d" i) :: !stack
          | `End -> (
              match !stack with
              | [] -> ()
              | sp :: rest ->
                  Trace.end_span t sp;
                  stack := rest))
        ops;
      tick now 1.0;
      let d = Trace.finish t tr in
      List.for_all
        (fun (s : Trace.span_data) ->
          s.Trace.t_start <= s.Trace.t_stop
          && s.Trace.t_start >= d.Trace.t_begin
          && s.Trace.t_stop <= d.Trace.t_end
          && s.Trace.depth >= 0)
        d.Trace.spans)

(* end_span on an outer span closes still-open children at the same
   instant — the exporter never sees a dangling child. *)
let test_end_closes_children () =
  let t, now = mk () in
  let tr = Trace.start t () in
  let outer = Trace.begin_span t tr "outer" in
  tick now 1.0;
  let _inner = Trace.begin_span t tr "inner" in
  tick now 1.0;
  Trace.end_span t outer;
  tick now 5.0;
  let d = Trace.finish t tr in
  let inner = List.find (fun s -> s.Trace.name = "inner") d.Trace.spans in
  let outer = List.find (fun s -> s.Trace.name = "outer") d.Trace.spans in
  Alcotest.(check (float 1e-9)) "child closed with parent" outer.Trace.t_stop
    inner.Trace.t_stop;
  Alcotest.(check int) "child nested one deeper" (outer.Trace.depth + 1)
    inner.Trace.depth

(* ------------------------------------------------------------------ *)
(* Binary framing (the MP stats-pipe payload)                          *)
(* ------------------------------------------------------------------ *)

let arb_label =
  (* Lean on nasty content: quotes, backslashes, control bytes. *)
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" cs)
      (list_size (int_range 0 12)
         (frequency
            [
              (3, map (String.make 1) (char_range 'a' 'z'));
              (1, return "\"");
              (1, return "\\");
              (1, return "\n");
              (1, return "\x01");
              (1, return "GET /x?q=\xc3\xa9");
            ])))
  |> QCheck.make

let prop_binary_roundtrip =
  QCheck.Test.make ~count:300 ~name:"to_binary/of_binary round-trips"
    QCheck.(pair (QCheck.pair arb_label arb_label) (int_range 0 5))
    (fun ((label, span_name), nspans) ->
      let t, now = mk ~max_spans:16 () in
      let tr = Trace.start t ~label () in
      for i = 0 to nspans - 1 do
        let sp =
          Trace.begin_span t tr
            ~track:(if i mod 2 = 0 then "helper" else "main-loop")
            span_name
        in
        tick now 0.25;
        Trace.end_span t sp
      done;
      let d = Trace.finish t tr in
      let bin = Trace.to_binary d in
      (* Embedded in a larger buffer, as on the pipe. *)
      match Trace.of_binary ("XX" ^ bin ^ "tail") ~pos:2 with
      | None -> false
      | Some (d', next) ->
          next = 2 + String.length bin
          && d'.Trace.label = d.Trace.label
          && d'.Trace.t_begin = d.Trace.t_begin
          && d'.Trace.t_end = d.Trace.t_end
          && d'.Trace.truncated = d.Trace.truncated
          && List.length d'.Trace.spans = List.length d.Trace.spans
          && List.for_all2
               (fun (a : Trace.span_data) (b : Trace.span_data) ->
                 a.Trace.name = b.Trace.name
                 && a.Trace.track = b.Trace.track
                 && a.Trace.t_start = b.Trace.t_start
                 && a.Trace.t_stop = b.Trace.t_stop
                 && a.Trace.depth = b.Trace.depth)
               d.Trace.spans d'.Trace.spans)

let test_of_binary_garbage () =
  Alcotest.(check bool) "truncated input rejected" true
    (Trace.of_binary "\x01\x02" ~pos:0 = None);
  Alcotest.(check bool) "empty input rejected" true
    (Trace.of_binary "" ~pos:0 = None)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)
(* ------------------------------------------------------------------ *)

let chrome_events t =
  let j = Test_status.parse_json (Trace.to_chrome_json t) in
  match Test_status.member "traceEvents" j with
  | Test_status.Arr evs -> evs
  | _ -> Alcotest.fail "traceEvents is not an array"

let test_chrome_json_roundtrip () =
  let t, now = mk () in
  let tr = Trace.start t ~label:"GET /a\"b\\c\n\x02" () in
  let sp = Trace.begin_span t tr ~track:"he\"lper" "disk\\read" in
  tick now 0.004;
  Trace.end_span t sp;
  Trace.instant t tr "close";
  ignore (Trace.finish t tr);
  let evs = chrome_events t in
  Alcotest.(check bool) "has events" true (List.length evs >= 2);
  let phases =
    List.map (fun e -> Test_status.to_str (Test_status.member "ph" e)) evs
  in
  Alcotest.(check bool) "has complete events" true (List.mem "X" phases);
  (* The nasty track name survives escaping and lands in a pid-naming
     metadata event. *)
  let named =
    List.filter_map
      (fun e ->
        match Test_status.member "ph" e with
        | Test_status.Str "M" ->
            Some
              (Test_status.to_str
                 (Test_status.member "name"
                    (Test_status.member "args" e)))
        | _ -> None)
      evs
  in
  Alcotest.(check bool) "track metadata present" true
    (List.mem "he\"lper" named);
  (* Complete events carry non-negative ts/dur in microseconds. *)
  List.iter
    (fun e ->
      match Test_status.member "ph" e with
      | Test_status.Str "X" ->
          Alcotest.(check bool) "ts >= 0" true
            (Test_status.to_num (Test_status.member "ts" e) >= 0.);
          Alcotest.(check bool) "dur >= 0" true
            (Test_status.to_num (Test_status.member "dur" e) >= 0.)
      | _ -> ())
    evs

let test_chrome_json_empty () =
  let t, _ = mk () in
  let evs = chrome_events t in
  Alcotest.(check int) "no events" 0 (List.length evs)

let test_summary () =
  let t, now = mk () in
  let tr = Trace.start t ~label:"GET /x" () in
  let sp = Trace.begin_span t tr "parse" in
  tick now 0.002;
  Trace.end_span t sp;
  let d = Trace.finish t tr in
  let s = Trace.summary d in
  List.iter
    (fun affix ->
      Alcotest.(check bool) (Printf.sprintf "summary has %S" affix) true
        (Helpers.contains ~affix s))
    [ "GET /x"; "parse"; "main-loop"; "ms" ]

(* ------------------------------------------------------------------ *)
(* Live integration                                                    *)
(* ------------------------------------------------------------------ *)

let with_config config f =
  let server = Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server (Server.port server))

let with_mode ?(tweak = fun c -> c) mode f =
  let docroot = Test_live.make_docroot () in
  with_config (tweak { (Server.default_config ~docroot) with Server.mode }) f

let get port path = Client.get ~host:"127.0.0.1" ~port path

(* Traces finish slightly after the response bytes reach the client
   (and MP children ship theirs over the stats pipe), so poll. *)
let await_traces ?(tries = 80) server pred =
  let rec loop tries =
    let snap = Server.trace_snapshot server in
    if pred snap || tries = 0 then snap
    else begin
      Thread.delay 0.05;
      loop (tries - 1)
    end
  in
  loop tries

let span_on ~name ~track (d : Trace.trace_data) =
  List.exists
    (fun (s : Trace.span_data) -> s.Trace.name = name && s.Trace.track = track)
    d.Trace.spans

let has_span ~name ~track snap = List.exists (span_on ~name ~track) snap

(* Every mode serves /server-trace as parseable Chrome JSON containing
   the earlier request.  Both requests ride one keep-alive connection:
   under MP each child serves its own ring, so the trace request must
   land on the child that handled the file request. *)
let test_trace_endpoint mode () =
  with_mode mode (fun server port ->
      let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
      let r1 = Client.Session.request session "/hello.txt" in
      Alcotest.(check int) "request ok" 200 r1.Client.status;
      ignore (await_traces server (fun snap -> List.length snap >= 1));
      let r = Client.Session.request session "/server-trace" in
      Client.Session.close session;
      Alcotest.(check int) "trace endpoint 200" 200 r.Client.status;
      Alcotest.(check (option string))
        "content type" (Some "application/json")
        (List.assoc_opt "content-type" r.Client.headers);
      let j = Test_status.parse_json r.Client.body in
      match Test_status.member "traceEvents" j with
      | Test_status.Arr evs ->
          Alcotest.(check bool) "events present" true (List.length evs > 0);
          let names =
            List.filter_map
              (fun e ->
                match Test_status.member "ph" e with
                | Test_status.Str "X" ->
                    Some (Test_status.to_str (Test_status.member "name" e))
                | _ -> None)
              evs
          in
          Alcotest.(check bool) "parse span exported" true
            (List.mem "parse" names)
      | _ -> Alcotest.fail "traceEvents is not an array")

(* The architectural claim, as data: an identical cold read is
   attributed to the helper track under AMPED and to the main loop
   under SPED. *)
let test_disk_attribution_amped () =
  with_mode Server.Amped (fun server port ->
      ignore (get port "/hello.txt");
      let snap =
        await_traces server (has_span ~name:"disk-read" ~track:"helper")
      in
      Alcotest.(check bool) "disk-read on helper track" true
        (has_span ~name:"disk-read" ~track:"helper" snap);
      Alcotest.(check bool) "helper queue wait recorded" true
        (has_span ~name:"helper-queue" ~track:"helper" snap);
      Alcotest.(check bool) "no main-loop disk-read" false
        (has_span ~name:"disk-read" ~track:"main-loop" snap))

let test_disk_attribution_sped () =
  with_mode Server.Sped (fun server port ->
      ignore (get port "/hello.txt");
      let snap =
        await_traces server (has_span ~name:"disk-read" ~track:"main-loop")
      in
      Alcotest.(check bool) "disk-read inline on the main loop" true
        (has_span ~name:"disk-read" ~track:"main-loop" snap);
      Alcotest.(check bool) "no helper track" false
        (has_span ~name:"disk-read" ~track:"helper" snap))

(* MP: the child runs the request, serialises the finished trace onto
   the stats pipe, and the parent's ring shows it on an mp-child track. *)
let test_mp_stitching () =
  with_mode (Server.Mp 2) (fun server port ->
      ignore (get port "/hello.txt");
      let on_child_track (d : Trace.trace_data) =
        List.exists
          (fun (s : Trace.span_data) ->
            String.length s.Trace.track >= 9
            && String.sub s.Trace.track 0 9 = "mp-child-")
          d.Trace.spans
      in
      let snap = await_traces server (List.exists on_child_track) in
      Alcotest.(check bool) "child trace stitched into parent ring" true
        (List.exists on_child_track snap);
      let d = List.find on_child_track snap in
      Alcotest.(check string) "request label crossed the pipe"
        "GET /hello.txt" d.Trace.label)

let test_mt_track () =
  with_mode (Server.Mt 2) (fun server port ->
      ignore (get port "/hello.txt");
      let on_worker (d : Trace.trace_data) =
        List.exists
          (fun (s : Trace.span_data) ->
            String.length s.Trace.track >= 10
            && String.sub s.Trace.track 0 10 = "mt-worker-")
          d.Trace.spans
      in
      let snap = await_traces server (List.exists on_worker) in
      Alcotest.(check bool) "spans on an mt-worker track" true
        (List.exists on_worker snap))

(* Second request on a persistent connection starts with a
   keepalive-reuse marker instead of accept. *)
let test_keepalive_reuse_span () =
  with_mode Server.Amped (fun server port ->
      let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
      ignore (Client.Session.request session "/hello.txt");
      ignore (Client.Session.request session "/index.html");
      Client.Session.close session;
      let snap =
        await_traces server (fun snap -> List.length snap >= 2)
      in
      Alcotest.(check bool) "first request accepted" true
        (has_span ~name:"accept" ~track:"main-loop" snap);
      Alcotest.(check bool) "second request reuses" true
        (has_span ~name:"keepalive-reuse" ~track:"main-loop" snap))

(* Tracing disabled: no collector, the trace path falls through to the
   docroot (404 here), and the snapshot stays empty. *)
let test_trace_disabled () =
  with_mode ~tweak:(fun c -> { c with Server.trace = false }) Server.Amped
    (fun server port ->
      Alcotest.(check bool) "tracing off" false (Server.tracing_enabled server);
      ignore (get port "/hello.txt");
      let r = get port "/server-trace" in
      Alcotest.(check int) "trace path is a plain 404" 404 r.Client.status;
      Alcotest.(check int) "no traces collected" 0
        (List.length (Server.trace_snapshot server)))

(* The ring bound holds under live traffic too. *)
let test_live_ring_capacity () =
  with_mode ~tweak:(fun c -> { c with Server.trace_capacity = 3 }) Server.Amped
    (fun server port ->
      for _ = 1 to 7 do
        ignore (get port "/hello.txt")
      done;
      let snap = await_traces server (fun snap -> List.length snap >= 3) in
      Alcotest.(check int) "ring capped" 3 (List.length snap))

(* Requests over the slow threshold get their span breakdown appended
   to the slow-request log. *)
let test_slow_request_log () =
  let log = Filename.temp_file "flash_slow" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      with_mode
        ~tweak:(fun c ->
          {
            c with
            Server.slow_request_ms = Some 0.0;
            slow_request_log = Some log;
          })
        Server.Sped
        (fun server port ->
          ignore (get port "/hello.txt");
          ignore (await_traces server (fun snap -> List.length snap >= 1));
          let rec await tries =
            let ic = open_in log in
            let len = in_channel_length ic in
            let contents = really_input_string ic len in
            close_in ic;
            if Helpers.contains ~affix:"/hello.txt" contents || tries = 0 then
              contents
            else begin
              Thread.delay 0.05;
              await (tries - 1)
            end
          in
          let contents = await 40 in
          Alcotest.(check bool) "request logged as slow" true
            (Helpers.contains ~affix:"GET /hello.txt" contents);
          Alcotest.(check bool) "breakdown includes parse span" true
            (Helpers.contains ~affix:"parse" contents);
          Alcotest.(check bool) "breakdown includes the track" true
            (Helpers.contains ~affix:"main-loop" contents)))

(* --access-log-timing appends service time in microseconds after the
   CLF fields. *)
let test_access_log_timing () =
  let log = Filename.temp_file "flash_access" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      with_mode
        ~tweak:(fun c ->
          {
            c with
            Server.access_log = Some log;
            access_log_timing = true;
          })
        Server.Amped
        (fun server port ->
          ignore (get port "/hello.txt");
          ignore (await_traces server (fun snap -> List.length snap >= 1)));
      let ic = open_in log in
      let line = input_line ic in
      close_in ic;
      Alcotest.(check bool) "CLF prefix intact" true
        (Helpers.contains ~affix:"\"GET /hello.txt HTTP/1.1\" 200" line);
      match String.rindex_opt line ' ' with
      | None -> Alcotest.fail "no timing field"
      | Some i -> (
          let last = String.sub line (i + 1) (String.length line - i - 1) in
          match int_of_string_opt last with
          | Some us -> Alcotest.(check bool) "microseconds >= 0" true (us >= 0)
          | None -> Alcotest.failf "timing field %S is not an integer" last))

(* /server-status: the JSON is produced by the real escaper (hostile
   server_name survives parsing) and reports the trace ring. *)
let test_status_json_trace_block () =
  let name = "fla\"sh\\test" in
  with_mode
    ~tweak:(fun c -> { c with Server.server_name = name })
    Server.Amped
    (fun server port ->
      ignore (get port "/hello.txt");
      ignore (await_traces server (fun snap -> List.length snap >= 1));
      let r = get port "/server-status?json" in
      Alcotest.(check int) "status 200" 200 r.Client.status;
      let j = Test_status.parse_json r.Client.body in
      Alcotest.(check string) "server name escaped and round-tripped" name
        (Test_status.to_str (Test_status.member "server" j));
      let trace = Test_status.member "trace" j in
      Alcotest.(check bool) "trace enabled" true
        (Test_status.member "enabled" trace = Test_status.Bool true);
      Alcotest.(check bool) "completed counted" true
        (Test_status.to_int (Test_status.member "completed" trace) >= 1);
      Alcotest.(check int) "capacity reported"
        (Server.default_config ~docroot:"/" ).Server.trace_capacity
        (Test_status.to_int (Test_status.member "capacity" trace)))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ring_capacity;
    QCheck_alcotest.to_alcotest prop_span_bound;
    QCheck_alcotest.to_alcotest prop_well_formed;
    QCheck_alcotest.to_alcotest prop_binary_roundtrip;
    Alcotest.test_case "end_span closes open children" `Quick
      test_end_closes_children;
    Alcotest.test_case "of_binary rejects garbage" `Quick test_of_binary_garbage;
    Alcotest.test_case "chrome JSON round-trips hostile labels" `Quick
      test_chrome_json_roundtrip;
    Alcotest.test_case "chrome JSON of empty ring" `Quick test_chrome_json_empty;
    Alcotest.test_case "slow-request summary line" `Quick test_summary;
    Alcotest.test_case "/server-trace (AMPED)" `Quick
      (test_trace_endpoint Server.Amped);
    Alcotest.test_case "/server-trace (SPED)" `Quick
      (test_trace_endpoint Server.Sped);
    Alcotest.test_case "/server-trace (MT)" `Quick
      (test_trace_endpoint (Server.Mt 2));
    Alcotest.test_case "/server-trace (MP)" `Quick
      (test_trace_endpoint (Server.Mp 2));
    Alcotest.test_case "AMPED cold read runs on the helper track" `Quick
      test_disk_attribution_amped;
    Alcotest.test_case "SPED cold read stalls the main loop" `Quick
      test_disk_attribution_sped;
    Alcotest.test_case "MP child traces stitch over the stats pipe" `Quick
      test_mp_stitching;
    Alcotest.test_case "MT spans carry worker tracks" `Quick test_mt_track;
    Alcotest.test_case "keep-alive reuse marker" `Quick
      test_keepalive_reuse_span;
    Alcotest.test_case "tracing disabled" `Quick test_trace_disabled;
    Alcotest.test_case "live ring capacity" `Quick test_live_ring_capacity;
    Alcotest.test_case "slow-request log" `Quick test_slow_request_log;
    Alcotest.test_case "access-log timing field" `Quick test_access_log_timing;
    Alcotest.test_case "status JSON trace block and escaping" `Quick
      test_status_json_trace_block;
  ]
