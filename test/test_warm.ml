(* The predictive-warming subsystem: Store pinning (hot tier), the
   access-history miner, the helper pool's low-priority prefetch lane,
   and the live server warming end to end from a recorded access log.

   Runs late in the suite: the budget-conservation property spawns
   OCaml domains, which forbids Unix.fork afterwards, so every MP
   (fork) test must already have run. *)

module Store = Flash_cache.Store
module Budget = Flash_cache.Budget
module Miner = Flash_warm.Miner
module Warm = Flash_warm.Warm

(* ------------------------------------------------------------------ *)
(* Store pinning                                                       *)
(* ------------------------------------------------------------------ *)

let test_pin_survives_pressure () =
  let store = Store.create ~name:"pin" ~capacity:100 () in
  ignore (Store.add store "a" () ~weight:40);
  ignore (Store.add store "b" () ~weight:40);
  Alcotest.(check bool) "pin resident" true (Store.pin store "a");
  Alcotest.(check bool) "pin missing" false (Store.pin store "zz");
  Alcotest.(check int) "pinned bytes" 40 (Store.pinned_bytes store);
  (* Capacity pressure must walk past the pinned entry: only [b] is
     evictable. *)
  ignore (Store.add store "c" () ~weight:40);
  Alcotest.(check bool) "pinned survives" true (Store.mem store "a");
  Alcotest.(check bool) "unpinned evicted" false (Store.mem store "b");
  (* Pinned weight still counts against capacity. *)
  Alcotest.(check int) "weight includes pinned" 80 (Store.weight store);
  (* Unpin rejoins replacement order; pressure can now take [a]. *)
  Alcotest.(check bool) "unpin" true (Store.unpin store "a");
  Alcotest.(check int) "no pinned bytes" 0 (Store.pinned_bytes store);
  ignore (Store.add store "d" () ~weight:40);
  ignore (Store.add store "e" () ~weight:40);
  Alcotest.(check bool) "unpinned a evictable" false (Store.mem store "a")

let test_all_pinned_refuses_shed () =
  let store = Store.create ~name:"allpin" ~capacity:100 () in
  ignore (Store.add store "a" () ~weight:30);
  ignore (Store.add store "b" () ~weight:30);
  ignore (Store.pin store "a");
  ignore (Store.pin store "b");
  Alcotest.(check bool) "shed refused when all pinned" false
    (Store.shed store);
  Alcotest.(check bool) "both resident" true
    (Store.mem store "a" && Store.mem store "b");
  ignore (Store.unpin store "b");
  Alcotest.(check bool) "shed takes the unpinned one" true (Store.shed store);
  Alcotest.(check bool) "pinned still resident" true (Store.mem store "a")

(* Satellite regression: removing a pinned entry must unpin it first,
   so the pinned-bytes gauge can never leak. *)
let test_remove_pinned_unpins_first () =
  let store = Store.create ~name:"rmpin" ~capacity:100 () in
  ignore (Store.add store "a" () ~weight:40);
  ignore (Store.pin store "a");
  Alcotest.(check int) "pinned before remove" 40 (Store.pinned_bytes store);
  ignore (Store.remove store "a");
  Alcotest.(check int) "pinned bytes zero after remove" 0
    (Store.pinned_bytes store);
  Alcotest.(check int) "pinned count zero after remove" 0
    (Store.pinned_count store);
  Alcotest.(check bool) "gone" false (Store.mem store "a");
  (* Same through the evicting remove (the invalidation path). *)
  ignore (Store.add store "b" () ~weight:40);
  ignore (Store.pin store "b");
  ignore (Store.remove ~evict:true store "b");
  Alcotest.(check int) "pinned bytes zero after evicting remove" 0
    (Store.pinned_bytes store);
  (* And the key is re-addable and evictable as if never pinned. *)
  ignore (Store.add store "a" () ~weight:60);
  ignore (Store.add store "c" () ~weight:60);
  Alcotest.(check bool) "re-added key under normal replacement" false
    (Store.mem store "a")

let test_pin_idempotent_and_stats () =
  let store = Store.create ~name:"pinstats" ~capacity:100 () in
  ignore (Store.add store "a" () ~weight:10);
  Alcotest.(check bool) "first pin" true (Store.pin store "a");
  Alcotest.(check bool) "second pin idempotent" true (Store.pin store "a");
  Alcotest.(check int) "no double charge" 10 (Store.pinned_bytes store);
  let s = Store.stats store in
  Alcotest.(check int) "stats pinned entries" 1 s.Store.pinned_entries;
  Alcotest.(check int) "stats pinned bytes" 10 s.Store.pinned_bytes;
  Alcotest.(check (list string)) "pinned keys" [ "a" ]
    (Store.pinned_keys store);
  Alcotest.(check bool) "unpin unknown" false (Store.unpin store "zz")

(* Property (a): a pinned key can never be named victim while pinned.
   Random op soup over a small store; after every operation, every key
   we believe pinned must still be resident. *)
let qcheck_pinned_never_victim =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (4, map2 (fun k w -> `Add (k, 1 + w)) (int_bound 9) (int_bound 30));
          (2, map (fun k -> `Access k) (int_bound 9));
          (2, map (fun k -> `Pin k) (int_bound 9));
          (1, map (fun k -> `Unpin k) (int_bound 9));
          (2, return `Shed);
        ])
  in
  Helpers.qcheck_case ~name:"pinned entries are never victims" ~count:300
    (QCheck.make
       ~print:(fun l -> Printf.sprintf "%d ops" (List.length l))
       Gen.(list_size (int_range 0 120) op_gen))
    (fun ops ->
      let store = Store.create ~name:"prop" ~capacity:60 () in
      let pinned = Hashtbl.create 8 in
      let key k = "k" ^ string_of_int k in
      List.for_all
        (fun op ->
          (match op with
          | `Add (k, w) ->
              (* Inserting over a pinned key keeps the pin; bound the
                 pinned weight so the store can always make progress. *)
              if Hashtbl.length pinned < 3 || Hashtbl.mem pinned (key k) then
                ignore (Store.add store (key k) () ~weight:w)
          | `Access k -> ignore (Store.find store (key k))
          | `Pin k ->
              if Store.pin store (key k) then
                Hashtbl.replace pinned (key k) ()
          | `Unpin k ->
              if Store.unpin store (key k) then Hashtbl.remove pinned (key k)
          | `Shed -> ignore (Store.shed store));
          Hashtbl.fold
            (fun k () acc -> acc && Store.mem store k && Store.pinned store k)
            pinned true)
        ops)

(* Property (b): the shared budget conserves bytes exactly while two
   domains mutate their own stores — one holding a pinned hot tier that
   refuses to shed — through one shared lock (the live server's
   cache-lock discipline).  Afterwards [Budget.used] must equal the sum
   of resident weights, and a final rebalance must fit the pool unless
   everything left is pinned. *)
let qcheck_budget_conservation_with_pins =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (5, map2 (fun k w -> `Add (k, 1 + w)) (int_bound 19) (int_bound 40));
          (2, map (fun k -> `Pin k) (int_bound 19));
          (1, map (fun k -> `Unpin k) (int_bound 19));
          (1, map (fun k -> `Remove k) (int_bound 19));
        ])
  in
  Helpers.qcheck_case ~name:"budget conserved across domains with a pinned member"
    ~count:30
    (QCheck.make
       ~print:(fun (a, b) ->
         Printf.sprintf "%d+%d ops" (List.length a) (List.length b))
       Gen.(
         pair
           (list_size (int_range 1 60) op_gen)
           (list_size (int_range 1 60) op_gen)))
    (fun (ops1, ops2) ->
      let budget = Budget.create ~bytes:400 in
      let lock = Mutex.create () in
      let run name pin_allowed ops =
        let store = Store.create ~name ~budget ~capacity:300 () in
        let apply op =
          Mutex.lock lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock lock)
            (fun () ->
              match op with
              | `Add (k, w) ->
                  ignore (Store.add store (string_of_int k) () ~weight:w)
              | `Pin k ->
                  (* Keep the hot tier well under the pool so shedding
                     can always fall through to unpinned weight. *)
                  if pin_allowed && Store.pinned_bytes store < 100 then
                    ignore (Store.pin store (string_of_int k))
              | `Unpin k -> ignore (Store.unpin store (string_of_int k))
              | `Remove k -> ignore (Store.remove store (string_of_int k)))
        in
        (store, fun () -> List.iter apply ops)
      in
      let s1, run1 = run "warm-member" true ops1 in
      let s2, run2 = run "cold-member" false ops2 in
      let d = Domain.spawn run2 in
      run1 ();
      Domain.join d;
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          let sum = Store.weight s1 + Store.weight s2 in
          if Budget.used budget <> sum then
            Test.fail_reportf "budget used %d <> resident %d"
              (Budget.used budget) sum;
          Budget.rebalance budget;
          let unpinned =
            Store.weight s1 - Store.pinned_bytes s1
            + (Store.weight s2 - Store.pinned_bytes s2)
          in
          if Budget.used budget > Budget.capacity budget && unpinned > 0 then
            Test.fail_reportf
              "rebalance left %d used over capacity %d with %d unpinned"
              (Budget.used budget) (Budget.capacity budget) unpinned;
          true))

(* ------------------------------------------------------------------ *)
(* Miner                                                               *)
(* ------------------------------------------------------------------ *)

let test_miner_decay_prefers_recent () =
  let m = Miner.create ~half_life:10. () in
  (* Four hits at t=0 decay to ~0.004 contributions by t=100; one fresh
     hit outranks them. *)
  for _ = 1 to 4 do
    Miner.observe m ~now:0. ~bytes:100 "/old"
  done;
  Miner.observe m ~now:100. ~bytes:100 "/fresh";
  match Miner.rank m ~now:100. ~top_k:10 ~budget_bytes:1000 with
  | { c_path = "/fresh"; _ } :: { c_path = "/old"; _ } :: _ -> ()
  | l ->
      Alcotest.failf "expected /fresh first, got [%s]"
        (String.concat ";" (List.map (fun c -> c.Miner.c_path) l))

let test_miner_size_aware () =
  let m = Miner.create () in
  Miner.observe m ~now:0. ~bytes:100 "/small";
  Miner.observe m ~now:0. ~bytes:10_000 "/big";
  match Miner.rank m ~now:0. ~top_k:10 ~budget_bytes:100_000 with
  | { c_path = "/small"; _ } :: { c_path = "/big"; _ } :: _ -> ()
  | _ -> Alcotest.fail "equal demand must rank the smaller object first"

let test_miner_budget_cut () =
  let m = Miner.create () in
  (* Scores: /a > /b > /c (by hit count); sizes 200, 200, 50.  With a
     250-byte budget the second candidate does not fit but the third
     does — the cut skips, it does not stop. *)
  for _ = 1 to 3 do
    Miner.observe m ~now:0. ~bytes:200 "/a"
  done;
  Miner.observe m ~now:0. ~bytes:200 "/b";
  Miner.observe m ~now:0. ~bytes:50 "/c";
  Miner.observe m ~now:0. ~bytes:50 "/c";
  (* score: /a = 3/200, /c = 2/50 = 0.04, /b = 1/200 — order c, a, b *)
  let picked =
    Miner.rank m ~now:0. ~top_k:10 ~budget_bytes:250
    |> List.map (fun c -> c.Miner.c_path)
  in
  Alcotest.(check (list string)) "budget skips what does not fit"
    [ "/c"; "/a" ] picked;
  let top1 =
    Miner.rank m ~now:0. ~top_k:1 ~budget_bytes:250
    |> List.map (fun c -> c.Miner.c_path)
  in
  Alcotest.(check (list string)) "top_k bounds the count" [ "/c" ] top1

let test_miner_dead_entries_pruned () =
  let m = Miner.create ~half_life:1. () in
  Miner.observe m ~now:0. ~bytes:10 "/ephemeral";
  Alcotest.(check int) "tracked" 1 (Miner.tracked m);
  (* After ~40 half-lives the contribution is ~1e-12, far below noise. *)
  Alcotest.(check int) "dead entry drops from ranking" 0
    (List.length (Miner.rank m ~now:40. ~top_k:10 ~budget_bytes:1000));
  Alcotest.(check int) "and from the table" 0 (Miner.tracked m)

let test_observe_line () =
  let m = Miner.create () in
  (* Machine-minable line: the resolved path field wins over the quoted
     target. *)
  Alcotest.(check bool) "mineable with path" true
    (Miner.observe_line m ~now:0.
       {|127.0.0.1 - - [08/Aug/2026:10:00:00 +0000] "GET /a.html HTTP/1.1" 200 512 /docroot/a.html|});
  (* Timing suffix after the path is tolerated. *)
  Alcotest.(check bool) "mineable with path and timing" true
    (Miner.observe_line m ~now:0.
       {|127.0.0.1 - - [08/Aug/2026:10:00:00 +0000] "GET /a.html HTTP/1.1" 200 512 /docroot/a.html 1234|});
  (* Plain CLF falls back to the request target. *)
  Alcotest.(check bool) "plain CLF mines the target" true
    (Miner.observe_line m ~now:0.
       {|10.0.0.1 - - [08/Aug/2026:10:00:01 +0000] "GET /b.html HTTP/1.0" 200 300|});
  (* Errors and junk are not demand. *)
  Alcotest.(check bool) "404 not mineable" false
    (Miner.observe_line m ~now:0.
       {|127.0.0.1 - - [d] "GET /missing HTTP/1.1" 404 180|});
  Alcotest.(check bool) "garbage not mineable" false
    (Miner.observe_line m ~now:0. "not a log line");
  Alcotest.(check int) "tracked paths" 2 (Miner.tracked m);
  let paths =
    Miner.rank m ~now:0. ~top_k:10 ~budget_bytes:100_000
    |> List.map (fun c -> c.Miner.c_path)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "resolved path preferred"
    [ "/b.html"; "/docroot/a.html" ] paths

let test_observe_line_304_keeps_size () =
  let m = Miner.create () in
  ignore
    (Miner.observe_line m ~now:0.
       {|h - - [d] "GET /c.html HTTP/1.1" 200 512|});
  (* The revalidation moved 0 body bytes; the size estimate must not
     collapse to 1. *)
  Alcotest.(check bool) "304 mineable" true
    (Miner.observe_line m ~now:1.
       {|h - - [d] "GET /c.html HTTP/1.1" 304 0|});
  match Miner.rank m ~now:1. ~top_k:1 ~budget_bytes:10_000 with
  | [ { c_bytes; _ } ] -> Alcotest.(check int) "size kept" 512 c_bytes
  | l -> Alcotest.failf "expected one candidate, got %d" (List.length l)

(* Property (c): ranking is a deterministic function of the observation
   sequence and the injected clock — two miners fed the same sequence
   rank identically, scores included. *)
let qcheck_miner_deterministic =
  let open QCheck in
  let obs_gen =
    Gen.(
      map3
        (fun k dt bytes -> (Printf.sprintf "/p%d" k, float_of_int dt, bytes))
        (int_bound 7) (int_bound 50) (int_range 1 5000))
  in
  Helpers.qcheck_case ~name:"miner ranking is deterministic" ~count:200
    (QCheck.make
       ~print:(fun l -> Printf.sprintf "%d observations" (List.length l))
       Gen.(list_size (int_range 0 60) obs_gen))
    (fun obs ->
      let feed () =
        let m = Miner.create ~half_life:20. () in
        let now = ref 0. in
        List.iter
          (fun (path, dt, bytes) ->
            now := !now +. dt;
            Miner.observe m ~now:!now ~bytes path)
          obs;
        Miner.rank m ~now:(!now +. 5.) ~top_k:5 ~budget_bytes:8000
      in
      feed () = feed ())

(* ------------------------------------------------------------------ *)
(* Absorber: store stats -> miner observations                         *)
(* ------------------------------------------------------------------ *)

let test_absorb_hit_deltas () =
  let miner = Miner.create () in
  let ab = Warm.create_absorber () in
  let stat hits =
    { Store.ks_hits = hits; ks_last = 0; ks_weight = 100; ks_pinned = false }
  in
  Warm.absorb ab miner ~now:0. ~stats:[ ("/a", stat 5); ("/b", stat 2) ]
    ~rejected:[];
  Warm.absorb ab miner ~now:1.
    ~stats:[ ("/a", stat 5); ("/b", stat 2) ]
    ~rejected:[];
  (* No new hits between cycles: scores must reflect 5 and 2, not 10
     and 4. *)
  (match Miner.rank miner ~now:1. ~top_k:2 ~budget_bytes:10_000 with
  | [ a; b ] ->
      Alcotest.(check string) "a first" "/a" a.Miner.c_path;
      Alcotest.(check bool) "ratio preserved"
        true
        (Float.abs ((a.Miner.c_score /. b.Miner.c_score) -. (5. /. 2.))
        < 0.01)
  | l -> Alcotest.failf "expected two candidates, got %d" (List.length l));
  (* New demand arrives as a delta... *)
  Warm.absorb ab miner ~now:2.
    ~stats:[ ("/a", stat 5); ("/b", stat 12) ]
    ~rejected:[];
  (match Miner.rank miner ~now:2. ~top_k:1 ~budget_bytes:10_000 with
  | [ top ] -> Alcotest.(check string) "b overtakes" "/b" top.Miner.c_path
  | _ -> Alcotest.fail "expected one candidate");
  (* ...and an evicted-and-readmitted key (smaller reading) counts its
     whole fresh total rather than going negative. *)
  Warm.absorb ab miner ~now:3. ~stats:[ ("/a", stat 2) ] ~rejected:[];
  Alcotest.(check bool) "shrunk counter absorbed" true (Miner.tracked miner >= 2)

let test_absorb_rejected_keys_once () =
  let miner = Miner.create () in
  let ab = Warm.create_absorber () in
  Warm.absorb ab miner ~now:0. ~stats:[] ~rejected:[ "/turned-away" ];
  Warm.absorb ab miner ~now:1. ~stats:[] ~rejected:[ "/turned-away" ];
  match Miner.rank miner ~now:1. ~top_k:5 ~budget_bytes:10_000 with
  | [ c ] ->
      Alcotest.(check string) "rejected key tracked" "/turned-away"
        c.Miner.c_path;
      (* Seen once, not once per cycle: score ~ one decayed observation. *)
      Alcotest.(check bool) "counted once" true (c.Miner.c_score <= 1.)
  | l -> Alcotest.failf "expected one candidate, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Helper pool: low-priority prefetch lane                             *)
(* ------------------------------------------------------------------ *)

let with_temp_files n f =
  let dir = Filename.temp_file "flash_warm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let paths =
    List.init n (fun i ->
        let p = Filename.concat dir (Printf.sprintf "f%d.bin" i) in
        let oc = open_out p in
        output_string oc (String.make 256 'x');
        close_out oc;
        p)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f paths)

let rec wait_for ?(tries = 200) pred =
  if tries = 0 then false
  else if pred () then true
  else begin
    Thread.delay 0.01;
    wait_for ~tries:(tries - 1) pred
  end

let test_low_lane_completes_off_the_books () =
  with_temp_files 3 (fun paths ->
      let pool = Flash_live.Helper.create ~helpers:2 () in
      Fun.protect
        ~finally:(fun () -> Flash_live.Helper.shutdown pool)
        (fun () ->
          List.iteri
            (fun i p ->
              Alcotest.(check bool) "low dispatch accepted" true
                (Flash_live.Helper.dispatch_low pool ~key:(-1 - i) ~path:p))
            paths;
          Alcotest.(check bool) "low jobs complete" true
            (wait_for (fun () -> Flash_live.Helper.low_completed pool = 3));
          let completions = Flash_live.Helper.drain pool in
          Alcotest.(check int) "completions delivered" 3
            (List.length completions);
          List.iter
            (fun c ->
              Alcotest.(check bool) "negative key" true
                (c.Flash_live.Helper.key < 0);
              match c.Flash_live.Helper.result with
              | Flash_live.Helper.Found { size; _ } ->
                  Alcotest.(check int) "stat size" 256 size
              | Flash_live.Helper.Missing -> Alcotest.fail "file went missing")
            completions;
          (* The client path's instruments must not see prefetch work. *)
          Alcotest.(check int) "latency histogram untouched" 0
            (Obs.Histogram.count (Flash_live.Helper.job_latency pool));
          Alcotest.(check int) "depth gauge untouched" 0
            (Flash_live.Helper.queue_depth_hwm pool);
          Alcotest.(check int) "own counter instead" 3
            (Flash_live.Helper.low_dispatched pool)))

let test_low_lane_bounded_and_yields_to_clients () =
  with_temp_files 4 (fun paths ->
      let client_path = List.nth paths 0 in
      let gate = Mutex.create () in
      (* Hold the single worker on a client job while we fill the lanes. *)
      Mutex.lock gate;
      let slow_read _ =
        Mutex.lock gate;
        Mutex.unlock gate
      in
      let pool =
        Flash_live.Helper.create ~helpers:1 ~max_low_queued:2 ~slow_read ()
      in
      Fun.protect
        ~finally:(fun () -> Flash_live.Helper.shutdown pool)
        (fun () ->
          Alcotest.(check bool) "client job in" true
            (Flash_live.Helper.dispatch pool ~key:1 ~path:client_path);
          Alcotest.(check bool) "worker picked it up" true
            (wait_for (fun () -> Flash_live.Helper.in_flight pool = 1));
          Alcotest.(check bool) "low 1 queued" true
            (Flash_live.Helper.dispatch_low pool ~key:(-1)
               ~path:(List.nth paths 1));
          Alcotest.(check bool) "low 2 queued" true
            (Flash_live.Helper.dispatch_low pool ~key:(-2)
               ~path:(List.nth paths 2));
          Alcotest.(check bool) "low 3 refused at the bound" false
            (Flash_live.Helper.dispatch_low pool ~key:(-3)
               ~path:(List.nth paths 3));
          Alcotest.(check int) "refusal counted" 1
            (Flash_live.Helper.low_rejected pool);
          (* A second client job arrives while prefetches wait. *)
          Alcotest.(check bool) "client 2 in" true
            (Flash_live.Helper.dispatch pool ~key:2 ~path:client_path);
          Mutex.unlock gate;
          Alcotest.(check bool) "everything drains" true
            (wait_for (fun () ->
                 Flash_live.Helper.low_completed pool = 2
                 && List.length (Flash_live.Helper.drain pool) >= 0
                 && Flash_live.Helper.queue_depth pool = 0
                 && Flash_live.Helper.low_queued pool = 0));
          (* Strict priority: with one worker, both client jobs finished
             before any low job started, so the last two completions on
             the pipe are the prefetches. *)
          Alcotest.(check int) "client histogram saw exactly the client jobs"
            2
            (Obs.Histogram.count (Flash_live.Helper.job_latency pool))))

(* ------------------------------------------------------------------ *)
(* Live server: warm from a recorded access log                        *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Minimal scraping: first integer after ["key":]. *)
let json_int body key =
  let pat = Printf.sprintf "%S:" key in
  let n = String.length body and m = String.length pat in
  let rec find i =
    if i + m > n then None
    else if String.sub body i m = pat then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let j = ref i in
      while
        !j < n && match body.[!j] with '0' .. '9' | '-' -> true | _ -> false
      do
        incr j
      done;
      int_of_string_opt (String.sub body i (!j - i))

let scrape port =
  match
    Flash_live.Client.get ~host:"127.0.0.1" ~port "/server-status?json"
  with
  | r when r.Flash_live.Client.status = 200 -> Some r.Flash_live.Client.body
  | _ -> None
  | exception _ -> None

let test_live_warm_from_log () =
  let docroot = Filename.temp_file "flash_warmlive" "" in
  Sys.remove docroot;
  Unix.mkdir docroot 0o755;
  write_file (Filename.concat docroot "hot.bin") (String.make 4096 'h');
  write_file (Filename.concat docroot "cold.bin") (String.make 4096 'c');
  let log = Filename.concat docroot "access.log" in
  (* Yesterday's traffic: hot.bin dominated, in the machine-minable
     format (resolved filesystem path after status and bytes). *)
  let oc = open_out log in
  for _ = 1 to 20 do
    Printf.fprintf oc
      "127.0.0.1 - - [08/Aug/2026:10:00:00 +0000] \"GET /hot.bin \
       HTTP/1.1\" 200 4096 %s\n"
      (Filename.concat docroot "hot.bin")
  done;
  close_out oc;
  let config =
    {
      (Flash_live.Server.default_config ~docroot) with
      Flash_live.Server.port = 0;
      mode = Flash_live.Server.Amped;
      trace = false;
      warm = true;
      warm_log = Some log;
      warm_interval = 0.2;
    }
  in
  let server = Flash_live.Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Flash_live.Server.stop server)
    (fun () ->
      let port = Flash_live.Server.port server in
      let got key =
        match scrape port with
        | Some body -> Option.value (json_int body key) ~default:0
        | None -> 0
      in
      (* The startup mining must drive a prefetch of hot.bin with no
         client having asked for it. *)
      Alcotest.(check bool) "prefetch completes" true
        (wait_for ~tries:300 (fun () -> got "prefetch_completed" >= 1));
      Alcotest.(check bool) "entry pinned" true
        (wait_for (fun () -> got "pinned_entries" >= 1));
      Alcotest.(check bool) "tracked paths exported" true
        (got "tracked_paths" >= 1);
      (* First client request: a cache hit served from the prefetched
         entry, attributed to warming. *)
      let r = Flash_live.Client.get ~host:"127.0.0.1" ~port "/hot.bin" in
      Alcotest.(check int) "warmed file served" 200 r.Flash_live.Client.status;
      Alcotest.(check int) "full body" 4096
        (String.length r.Flash_live.Client.body);
      Alcotest.(check bool) "hit attributed to warming" true
        (wait_for (fun () -> got "hits_after_warm" >= 1));
      Alcotest.(check bool) "served from cache" true (got "hits" >= 1);
      (* The metrics endpoint exports the warm family. *)
      let metrics =
        (Flash_live.Client.get ~host:"127.0.0.1" ~port "/metrics")
          .Flash_live.Client.body
      in
      Alcotest.(check bool) "flash_warm metrics exported" true
        (Helpers.contains ~affix:"flash_warm_prefetch_completed_total" metrics);
      (* An unmined file still serves normally. *)
      let r2 = Flash_live.Client.get ~host:"127.0.0.1" ~port "/cold.bin" in
      Alcotest.(check int) "cold file fine" 200 r2.Flash_live.Client.status)

let test_live_warm_log_missing_is_harmless () =
  let docroot = Filename.temp_file "flash_warmnolog" "" in
  Sys.remove docroot;
  Unix.mkdir docroot 0o755;
  write_file (Filename.concat docroot "a.bin") "aaaa";
  let config =
    {
      (Flash_live.Server.default_config ~docroot) with
      Flash_live.Server.port = 0;
      trace = false;
      warm = true;
      warm_log = Some (Filename.concat docroot "no-such.log");
      warm_interval = 0.2;
    }
  in
  let server = Flash_live.Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Flash_live.Server.stop server)
    (fun () ->
      let port = Flash_live.Server.port server in
      let r = Flash_live.Client.get ~host:"127.0.0.1" ~port "/a.bin" in
      Alcotest.(check int) "serves despite missing log" 200
        r.Flash_live.Client.status;
      (* Warming is on and cycling; demand just mined nothing yet. *)
      match scrape port with
      | Some body ->
          Alcotest.(check bool) "warm block present" true
            (Helpers.contains ~affix:"\"cycles\"" body)
      | None -> Alcotest.fail "no status")

let suite =
  [
    Alcotest.test_case "pin survives pressure" `Quick test_pin_survives_pressure;
    Alcotest.test_case "all pinned refuses shed" `Quick
      test_all_pinned_refuses_shed;
    Alcotest.test_case "remove of pinned unpins first" `Quick
      test_remove_pinned_unpins_first;
    Alcotest.test_case "pin idempotent, stats exact" `Quick
      test_pin_idempotent_and_stats;
    qcheck_pinned_never_victim;
    Alcotest.test_case "miner decay prefers recent" `Quick
      test_miner_decay_prefers_recent;
    Alcotest.test_case "miner is size-aware" `Quick test_miner_size_aware;
    Alcotest.test_case "miner budget cut skips, not stops" `Quick
      test_miner_budget_cut;
    Alcotest.test_case "miner prunes dead entries" `Quick
      test_miner_dead_entries_pruned;
    Alcotest.test_case "observe_line mines the server log format" `Quick
      test_observe_line;
    Alcotest.test_case "observe_line keeps size across 304" `Quick
      test_observe_line_304_keeps_size;
    qcheck_miner_deterministic;
    Alcotest.test_case "absorber feeds hit deltas" `Quick
      test_absorb_hit_deltas;
    Alcotest.test_case "absorber counts rejections once" `Quick
      test_absorb_rejected_keys_once;
    Alcotest.test_case "low lane completes off the books" `Quick
      test_low_lane_completes_off_the_books;
    Alcotest.test_case "low lane bounded, clients first" `Quick
      test_low_lane_bounded_and_yields_to_clients;
    Alcotest.test_case "live server warms from a recorded log" `Quick
      test_live_warm_from_log;
    Alcotest.test_case "missing warm log is harmless" `Quick
      test_live_warm_log_missing_is_harmless;
    (* Spawns a domain — keep with the other post-fork tests. *)
    qcheck_budget_conservation_with_pins;
  ]
