(* The unified metrics pipeline: registry -> exposition rendering and
   strict validation, the flight recorder's windowed rollups (qcheck:
   merging every window reproduces the global histogram), and the live
   server's /metrics, ?window=N, SLO health and MP gauge consolidation.
   Reuses the JSON reader from {!Test_status}. *)

module Server = Flash_live.Server
module Client = Flash_live.Client
open Test_status

(* ------------------------------------------------------------------ *)
(* Registry -> exposition round trip                                   *)
(* ------------------------------------------------------------------ *)

let test_render_validates () =
  let reg = Obs.Registry.create () in
  let hist = Obs.Histogram.create () in
  Obs.Histogram.record hist 0.004;
  Obs.Histogram.record hist 0.120;
  Obs.Registry.counter reg ~name:"t_requests_total" ~help:"Requests." (fun () ->
      42);
  Obs.Registry.counter reg ~name:"t_responses_total"
    ~help:"Responses by class."
    ~labels:[ ("class", "2xx") ]
    (fun () -> 40);
  Obs.Registry.counter reg ~name:"t_responses_total"
    ~help:"Responses by class."
    ~labels:[ ("class", "4xx") ]
    (fun () -> 2);
  Obs.Registry.gauge reg ~name:"t_active" ~help:"Active now." (fun () -> 3.);
  Obs.Registry.histogram reg ~name:"t_duration_seconds" ~help:"Latency."
    (fun () -> Obs.Histogram.copy hist);
  (* Label values exercising the format's escapes. *)
  Obs.Registry.info reg ~name:"t_build_info" ~help:"Build."
    ~labels:[ ("version", "weird \"quoted\" \\ back\nnewline") ];
  let text = Obs.Exposition.render (Obs.Registry.collect reg) in
  match Obs.Exposition.validate text with
  | Error msg -> Alcotest.failf "rendered exposition invalid: %s" msg
  | Ok families ->
      let find name =
        match List.find_opt (fun f -> f.Obs.Exposition.f_name = name) families with
        | Some f -> f
        | None -> Alcotest.failf "family %s missing" name
      in
      Alcotest.(check string) "counter typed" "counter"
        (find "t_requests_total").Obs.Exposition.f_type;
      Alcotest.(check int) "labelled series" 2
        (List.length (find "t_responses_total").Obs.Exposition.f_series);
      Alcotest.(check string) "histogram typed" "histogram"
        (find "t_duration_seconds").Obs.Exposition.f_type;
      (* The cumulative ladder ends at +Inf and matches _count. *)
      let series = (find "t_duration_seconds").Obs.Exposition.f_series in
      let value name labels =
        match
          List.find_opt
            (fun s ->
              s.Obs.Exposition.s_name = name
              && s.Obs.Exposition.s_labels = labels)
            series
        with
        | Some s -> s.Obs.Exposition.s_value
        | None -> Alcotest.failf "series %s missing" name
      in
      Alcotest.(check (float 0.))
        "+Inf bucket = count" 2.
        (value "t_duration_seconds_bucket" [ ("le", "+Inf") ]);
      Alcotest.(check (float 0.))
        "_count" 2.
        (value "t_duration_seconds_count" []);
      (* The escaped label value survives parsing verbatim. *)
      let info = find "t_build_info" in
      let labels =
        match info.Obs.Exposition.f_series with
        | [ s ] -> s.Obs.Exposition.s_labels
        | _ -> Alcotest.fail "info should be one series"
      in
      Alcotest.(check (option string))
        "escape round-trip"
        (Some "weird \"quoted\" \\ back\nnewline")
        (List.assoc_opt "version" labels)

let test_registry_rejects_duplicates () =
  let reg = Obs.Registry.create () in
  Obs.Registry.counter reg ~name:"dup_total" ~help:"x" (fun () -> 1);
  (match Obs.Registry.counter reg ~name:"dup_total" ~help:"x" (fun () -> 2) with
  | () -> Alcotest.fail "duplicate (name, labels) should be rejected"
  | exception Invalid_argument _ -> ());
  match
    Obs.Registry.counter reg ~name:"bad name!" ~help:"x" (fun () -> 1)
  with
  | () -> Alcotest.fail "invalid metric name should be rejected"
  | exception Invalid_argument _ -> ()

let test_validator_rejects () =
  let reject what text =
    match Obs.Exposition.validate text with
    | Ok _ -> Alcotest.failf "%s should not validate" what
    | Error _ -> ()
  in
  reject "sample without TYPE" "a 1\n";
  reject "duplicate series" "# TYPE a counter\na 1\na 2\n";
  reject "unsorted labels" "# TYPE a counter\na{b=\"1\",a=\"2\"} 1\n";
  reject "negative counter" "# TYPE a counter\na -1\n";
  reject "redeclared family" "# TYPE a counter\na 1\n# TYPE a counter\n";
  reject "non-monotone buckets"
    "# TYPE h histogram\n\
     h_bucket{le=\"0.1\"} 5\n\
     h_bucket{le=\"1\"} 3\n\
     h_bucket{le=\"+Inf\"} 5\n\
     h_sum 0.5\n\
     h_count 5\n";
  reject "missing +Inf bucket"
    "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_sum 0.5\nh_count 5\n"

(* ------------------------------------------------------------------ *)
(* Flight recorder: rollups are exact deltas                           *)
(* ------------------------------------------------------------------ *)

(* Drive a recorder from a manual clock over random traffic batches and
   check that the ring is lossless: summing every window's request count
   and merging every window's latency histogram reproduces the global
   cumulative state exactly (bucket-for-bucket — Histogram.diff is
   exact). *)
let recorder_gen =
  QCheck.Gen.(
    list_size (int_range 1 25)
      (pair
         (list_size (int_range 0 15) (float_range 0.0002 0.8))
         (float_range 0.3 2.7)))

let recorder_arbitrary =
  QCheck.make recorder_gen
    ~print:(fun batches ->
      Printf.sprintf "%d batches, %d samples" (List.length batches)
        (List.fold_left (fun a (ls, _) -> a + List.length ls) 0 batches))

let drive_recorder batches =
  let now = ref 0. in
  let requests = ref 0 in
  let global = Obs.Histogram.create () in
  let read () =
    ( {
        Obs.Recorder.c_requests = !requests;
        c_bytes = !requests * 100;
        c_writev = !requests;
        c_write = 0;
        c_copied = 0;
        c_cache_hits = 0;
        c_cache_misses = 0;
        c_errors = 0;
        c_wait = 0.;
        c_work = 0.;
        c_latency = Obs.Histogram.copy global;
      },
      { Obs.Recorder.g_active = 1; g_helper_queue = 0; g_mapped = 0 } )
  in
  let r =
    Obs.Recorder.create ~capacity:1000 ~interval:1.0 ~now:(fun () -> !now)
      ~read ()
  in
  List.iter
    (fun (latencies, dt) ->
      now := !now +. dt;
      List.iter
        (fun l ->
          incr requests;
          Obs.Histogram.record global l)
        latencies;
      Obs.Recorder.tick r)
    batches;
  Obs.Recorder.flush r;
  (r, !requests, global)

let prop_rollups_lossless batches =
  let r, total, global = drive_recorder batches in
  let rollups = Obs.Recorder.all r in
  let sum_requests =
    List.fold_left (fun a w -> a + w.Obs.Recorder.requests) 0 rollups
  in
  let merged =
    List.fold_left
      (fun acc w -> Obs.Histogram.merge acc w.Obs.Recorder.latency)
      (Obs.Histogram.create ())
      rollups
  in
  sum_requests = total
  && Obs.Histogram.count merged = Obs.Histogram.count global
  && Helpers.float_eq ~eps:1e-6 (Obs.Histogram.sum merged)
       (Obs.Histogram.sum global)
  && Obs.Histogram.buckets merged = Obs.Histogram.buckets global
  && List.for_all (fun w -> w.Obs.Recorder.r_dur > 0.) rollups

let test_dump_round_trips () =
  let r, total, _ =
    drive_recorder [ ([ 0.002; 0.004 ], 1.0); ([ 0.008 ], 1.0); ([], 0.5) ]
  in
  let j = parse_json (Obs.Recorder.dump_json r) in
  Alcotest.(check int) "capacity" 1000 (to_int (member "capacity" j));
  Alcotest.(check (float 1e-9)) "interval" 1.0 (to_num (member "interval" j));
  let rollups =
    match member "rollups" j with
    | Arr ws -> ws
    | _ -> Alcotest.fail "rollups should be an array"
  in
  Alcotest.(check bool) "windows recorded" true (List.length rollups >= 2);
  let dumped_requests =
    List.fold_left (fun a w -> a + to_int (member "requests" w)) 0 rollups
  in
  Alcotest.(check int) "dump is lossless on requests" total dumped_requests;
  List.iter
    (fun w ->
      Alcotest.(check bool) "dur positive" true (to_num (member "dur" w) > 0.);
      let rps = to_num (member "rps" w) in
      Alcotest.(check bool) "rps finite and sane" true (rps >= 0. && rps < 1e6))
    rollups

(* ------------------------------------------------------------------ *)
(* Live server: /metrics, ?window=N, no-drift, SLO, MP gauges          *)
(* ------------------------------------------------------------------ *)

let with_config config f =
  let server = Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server (Server.port server))

let get port path = Client.get ~host:"127.0.0.1" ~port path

let validate_families body =
  match Obs.Exposition.validate body with
  | Ok families -> families
  | Error msg -> Alcotest.failf "/metrics invalid: %s" msg

let family_opt families name =
  List.find_opt (fun f -> f.Obs.Exposition.f_name = name) families

let series_value families ?(labels = []) name =
  match
    List.concat_map (fun f -> f.Obs.Exposition.f_series) families
    |> List.find_opt (fun s ->
           s.Obs.Exposition.s_name = name && s.Obs.Exposition.s_labels = labels)
  with
  | Some s -> s.Obs.Exposition.s_value
  | None -> Alcotest.failf "series %s missing from /metrics" name

let test_metrics_agrees_with_status () =
  let docroot = Test_live.make_docroot () in
  with_config (Server.default_config ~docroot) (fun _server port ->
      ignore (get port "/hello.txt");
      ignore (get port "/hello.txt");
      ignore (get port "/index.html");
      let r = get port "/metrics" in
      Alcotest.(check int) "/metrics 200" 200 r.Client.status;
      Alcotest.(check (option string))
        "exposition content type"
        (Some "text/plain; version=0.0.4")
        (List.assoc_opt "content-type" r.Client.headers);
      let families = validate_families r.Client.body in
      let prom_requests =
        int_of_float (series_value families "flash_http_requests_total")
      in
      let prom_hits =
        int_of_float
          (series_value families
             ~labels:[ ("cache", "file") ]
             "flash_cache_hits_total")
      in
      let prom_writev =
        int_of_float (series_value families "flash_writev_calls_total")
      in
      (* The latency histogram exposes the full cumulative ladder. *)
      (match family_opt families "flash_request_duration_seconds" with
      | None -> Alcotest.fail "latency family missing"
      | Some f ->
          Alcotest.(check string) "latency is a histogram" "histogram"
            f.Obs.Exposition.f_type);
      Alcotest.(check (float 0.))
        "+Inf bucket equals count"
        (series_value families "flash_request_duration_seconds_count")
        (series_value families
           ~labels:[ ("le", "+Inf") ]
           "flash_request_duration_seconds_bucket");
      (* Scraped one request later, the JSON view must agree up to the
         requests issued in between (the scrapes themselves). *)
      let j = get_status_json port in
      let json_requests = to_int (member "requests" j) in
      Alcotest.(check bool) "file requests counted" true (prom_requests >= 3);
      Alcotest.(check bool) "JSON at or after /metrics" true
        (json_requests >= prom_requests && json_requests - prom_requests <= 2);
      Alcotest.(check int) "cache hits agree exactly" prom_hits
        (to_int (member "hits" (member "cache" j)));
      Alcotest.(check bool) "writev counters agree" true
        (prom_writev > 0
        && to_int (member "writev_calls" (member "send" j)) >= prom_writev))

let test_metrics_disabled () =
  let docroot = Test_live.make_docroot () in
  with_config
    { (Server.default_config ~docroot) with Server.metrics_path = None }
    (fun _server port ->
      let r = get port "/metrics" in
      Alcotest.(check int) "plain 404 when disabled" 404 r.Client.status)

(* Both status views print the registry verbatim: every key in the text
   view's metrics section appears in the JSON metrics object and vice
   versa — the two surfaces cannot drift because they are one walk. *)
let test_status_views_never_drift () =
  let docroot = Test_live.make_docroot () in
  with_config (Server.default_config ~docroot) (fun _server port ->
      ignore (get port "/hello.txt");
      let text = (get port "/server-status").Client.body in
      let j = get_status_json port in
      let text_keys =
        let lines = String.split_on_char '\n' text in
        let rec after_header = function
          | [] -> Alcotest.fail "text view lacks a metrics section"
          | "metrics:" :: rest -> rest
          | _ :: rest -> after_header rest
        in
        after_header lines
        |> List.filter_map (fun line ->
               if String.length line > 2 && String.sub line 0 2 = "  " then
                 (* key and value separated by the LAST space: label
                    values may themselves contain spaces. *)
                 let body = String.sub line 2 (String.length line - 2) in
                 match String.rindex_opt body ' ' with
                 | Some i -> Some (String.sub body 0 i)
                 | None -> None
               else None)
      in
      let json_keys =
        match member "metrics" j with
        | Obj kvs -> List.map fst kvs
        | _ -> Alcotest.fail "JSON metrics should be an object"
      in
      Alcotest.(check bool) "registry non-trivial" true
        (List.length text_keys > 20);
      Alcotest.(check (list string))
        "same keys, same order"
        text_keys json_keys)

let test_window_returns_rollups () =
  let docroot = Test_live.make_docroot () in
  with_config
    { (Server.default_config ~docroot) with Server.recorder_interval = 0.05 }
    (fun _server port ->
      for _ = 1 to 5 do
        ignore (get port "/hello.txt");
        Thread.delay 0.06
      done;
      let r = get port "/server-status?window=50" in
      Alcotest.(check int) "window view 200" 200 r.Client.status;
      let j = parse_json r.Client.body in
      Alcotest.(check int) "echoes N" 50 (to_int (member "window" j));
      let rollups =
        match member "rollups" j with
        | Arr ws -> ws
        | _ -> Alcotest.fail "rollups should be an array"
      in
      Alcotest.(check bool) "several windows closed" true
        (List.length rollups >= 2);
      let requests =
        List.fold_left (fun a w -> a + to_int (member "requests" w)) 0 rollups
      in
      Alcotest.(check bool) "windows saw the traffic" true (requests >= 4);
      Alcotest.(check bool) "some window has non-zero rate" true
        (List.exists (fun w -> to_num (member "rps" w) > 0.) rollups))

let test_recorder_dump_parses () =
  let docroot = Test_live.make_docroot () in
  with_config
    { (Server.default_config ~docroot) with Server.recorder_interval = 0.05 }
    (fun server port ->
      ignore (get port "/hello.txt");
      Thread.delay 0.12;
      ignore (get port "/hello.txt");
      (* What the SIGUSR1 handler writes. *)
      let j = parse_json (Server.recorder_dump server) in
      let rollups =
        match member "rollups" j with
        | Arr ws -> ws
        | _ -> Alcotest.fail "rollups should be an array"
      in
      Alcotest.(check bool) "dump has windows" true (rollups <> []);
      let requests =
        List.fold_left (fun a w -> a + to_int (member "requests" w)) 0 rollups
      in
      Alcotest.(check bool) "dump covers the requests" true (requests >= 2))

let test_slo_health () =
  let docroot = Test_live.make_docroot () in
  with_config
    {
      (Server.default_config ~docroot) with
      Server.recorder_interval = 0.05;
      latency_slo = Some (99., 10_000.);
    }
    (fun _server port ->
      for _ = 1 to 4 do
        ignore (get port "/hello.txt");
        Thread.delay 0.06
      done;
      let j = get_status_json port in
      let health = member "health" j in
      Alcotest.(check string)
        "ten-second budget is healthy" "healthy"
        (to_str (member "state" health));
      Alcotest.(check (float 1e-9)) "no burn" 0. (to_num (member "burn" health));
      Alcotest.(check bool) "windows evaluated" true
        (to_int (member "windows" health) >= 1);
      let families = validate_families (get port "/metrics").Client.body in
      Alcotest.(check (float 0.))
        "flash_slo_state healthy=0" 0.
        (series_value families "flash_slo_state");
      match family_opt families "flash_slo_info" with
      | None -> Alcotest.fail "flash_slo_info missing"
      | Some f -> (
          match f.Obs.Exposition.f_series with
          | [ s ] ->
              Alcotest.(check (option string))
                "target labelled" (Some "10000")
                (List.assoc_opt "target_ms" s.Obs.Exposition.s_labels)
          | _ -> Alcotest.fail "flash_slo_info should be one series"))

(* MP consolidation: child gauges are summed at snapshot time from each
   child's last-shipped value — re-shipping the same gauge must not
   accumulate.  Two children, two persistent connections: the parent
   reports exactly two active connections no matter how many requests
   (and so gauge records) each child ships, and zero after both close. *)
let await ?(tries = 80) pred =
  let rec loop tries =
    if pred () || tries = 0 then pred ()
    else begin
      Thread.delay 0.05;
      loop (tries - 1)
    end
  in
  loop tries

let test_mp_gauges_sum_at_snapshot () =
  let docroot = Test_live.make_docroot () in
  with_config
    { (Server.default_config ~docroot) with Server.mode = Server.Mp 2 }
    (fun server port ->
      let s1 = Client.Session.connect ~host:"127.0.0.1" ~port () in
      let s2 = Client.Session.connect ~host:"127.0.0.1" ~port () in
      Fun.protect
        ~finally:(fun () ->
          (try Client.Session.close s1 with _ -> ());
          try Client.Session.close s2 with _ -> ())
        (fun () ->
          ignore (Client.Session.request s1 "/hello.txt");
          ignore (Client.Session.request s2 "/hello.txt");
          Alcotest.(check bool) "two active after first requests" true
            (await (fun () ->
                 (Server.stats server).Server.active_connections = 2));
          (* Many more gauge ships from the same children... *)
          for _ = 1 to 5 do
            ignore (Client.Session.request s1 "/hello.txt");
            ignore (Client.Session.request s2 "/hello.txt")
          done;
          ignore
            (await (fun () -> (Server.stats server).Server.requests >= 12));
          (* ...must not inflate the snapshot sum. *)
          Alcotest.(check int) "still exactly two active" 2
            (Server.stats server).Server.active_connections;
          Alcotest.(check bool) "mapped bytes are a sane gauge" true
            ((Server.stats server).Server.mapped_bytes >= 0));
      Alcotest.(check bool) "zero after both closed" true
        (await (fun () ->
             (Server.stats server).Server.active_connections = 0)))

(* MP counters still consolidate as sums across children. *)
let test_mp_metrics_consolidated () =
  let docroot = Test_live.make_docroot () in
  with_config
    { (Server.default_config ~docroot) with Server.mode = Server.Mp 2 }
    (fun server port ->
      for _ = 1 to 4 do
        ignore (get port "/hello.txt")
      done;
      ignore (await (fun () -> (Server.stats server).Server.requests >= 4));
      let families = validate_families (Server.metrics_body server) in
      Alcotest.(check bool) "parent consolidates child requests" true
        (series_value families "flash_http_requests_total" >= 4.))

let suite =
  [
    Alcotest.test_case "rendered exposition validates" `Quick
      test_render_validates;
    Alcotest.test_case "registry rejects bad registrations" `Quick
      test_registry_rejects_duplicates;
    Alcotest.test_case "validator rejects malformed payloads" `Quick
      test_validator_rejects;
    Helpers.qcheck_case ~count:150 ~name:"rollup ring is lossless"
      recorder_arbitrary prop_rollups_lossless;
    Alcotest.test_case "recorder dump round-trips JSON" `Quick
      test_dump_round_trips;
    Alcotest.test_case "/metrics agrees with status JSON" `Quick
      test_metrics_agrees_with_status;
    Alcotest.test_case "/metrics disabled serves docroot rules" `Quick
      test_metrics_disabled;
    Alcotest.test_case "status text and JSON never drift" `Quick
      test_status_views_never_drift;
    Alcotest.test_case "?window=N returns live rollups" `Quick
      test_window_returns_rollups;
    Alcotest.test_case "SIGUSR1 dump body parses" `Quick
      test_recorder_dump_parses;
    Alcotest.test_case "SLO health evaluates over windows" `Quick
      test_slo_health;
    Alcotest.test_case "MP gauges sum at snapshot" `Quick
      test_mp_gauges_sum_at_snapshot;
    Alcotest.test_case "MP /metrics consolidates counters" `Quick
      test_mp_metrics_consolidated;
  ]
