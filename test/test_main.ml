let () =
  Alcotest.run "flash"
    [
      ("sim.heap", Test_heap.suite);
      ("sim.rng", Test_rng.suite);
      ("sim.engine", Test_engine.suite);
      ("sim.proc", Test_proc.suite);
      ("sim.sync", Test_sync.suite);
      ("sim.cpu", Test_cpu.suite);
      ("sim.stat", Test_stat.suite);
      ("simos.memory", Test_memory.suite);
      ("simos.pollable", Test_pollable.suite);
      ("simos.buffer_cache", Test_buffer_cache.suite);
      ("simos.disk", Test_disk.suite);
      ("simos.fs", Test_fs.suite);
      ("simos.net", Test_net.suite);
      ("simos.pipe", Test_pipe.suite);
      ("simos.kernel", Test_kernel.suite);
      ("http", Test_http.suite);
      ("util.lru", Test_lru.suite);
      ("cache.policy", Test_cache_policy.suite);
      ("flash.config", Test_config.suite);
      ("flash.caches", Test_caches.suite);
      ("flash.runtime", Test_runtime.suite);
      ("flash.server", Test_server_sim.suite);
      ("workload", Test_workload.suite);
      ("workload.specweb", Test_specweb.suite);
      ("obs", Test_obs.suite);
      ("evio", Test_evio.suite);
      ("live", Test_live.suite);
      ("live.features", Test_live_features.suite);
      ("live.sendpath", Test_sendpath.suite);
      ("live.http11", Test_http11.suite);
      ("live.status", Test_status.suite);
      ("live.metrics", Test_metrics.suite);
      ("live.trace", Test_trace.suite);
      ("util.lru_model", Test_lru_model.suite);
      ("flash.helper_pool", Test_helper_pool.suite);
      ("flash.extensions", Test_extensions.suite);
      ("robustness", Test_robustness.suite);
      ("conservation", Test_conservation.suite);
      ("orderings", Test_orderings.suite);
      ("guard", Test_guard.suite);
      (* Last on purpose: these tests spawn OCaml domains, and OCaml 5
         forbids Unix.fork once any domain has ever been created — every
         MP (fork) test above must run before the first of these. *)
      ("warm", Test_warm.suite);
      ("live.sharded", Test_sharded.suite);
    ]
