(* Shared test utilities. *)

(* Run [f] inside a simulated process and drain the engine; fail the test
   if the process never finished (deadlock). *)
let run_sim ?seed f =
  let engine = Sim.Engine.create ?seed () in
  let result = ref None in
  ignore (Sim.Proc.spawn engine ~name:"test-main" (fun () -> result := Some (f engine)));
  ignore (Sim.Engine.run engine);
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulated process did not run to completion"

(* Same, but with a time bound (for tests over never-terminating servers). *)
let run_sim_until ?seed ~until f =
  let engine = Sim.Engine.create ?seed () in
  let result = ref None in
  ignore (Sim.Proc.spawn engine ~name:"test-main" (fun () -> result := Some (f engine)));
  ignore (Sim.Engine.run ~until engine);
  !result

let qcheck_case ?(count = 200) ~name arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary prop)

let float_eq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ~msg ?(eps = 1e-9) expected actual =
  if not (float_eq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* Substring search, to avoid depending on astring in tests. *)
let contains ~affix s =
  let n = String.length s and m = String.length affix in
  let rec scan i = i + m <= n && (String.sub s i m = affix || scan (i + 1)) in
  m = 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Raw-socket HTTP driver for conformance tests                        *)
(* ------------------------------------------------------------------ *)

(* A deliberately independent HTTP client: requests are written as raw
   bytes and responses parsed here, not through [Flash_live.Client], so
   conformance tests exercise the wire format itself (and can make
   requests the high-level client would not, e.g. conflicting
   conditionals).  [raw] preserves the exact bytes of the response for
   byte-identity comparisons across server architectures. *)
module Raw = struct
  type response = {
    status : int;
    reason : string;
    headers : (string * string) list;  (* names lowercased *)
    body : string;
    raw : string;  (* status line + headers + body, exactly as received *)
  }

  let connect ~port =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
     with e ->
       Unix.close fd;
       raise e);
    fd

  let read_until_close fd acc =
    let buf = Bytes.create 16384 in
    let rec go () =
      match Unix.read fd buf 0 16384 with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes acc buf 0 n;
          go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
    in
    go ()

  let find_head_end s from =
    let n = String.length s in
    let rec go i =
      if i + 4 > n then None
      else if String.sub s i 4 = "\r\n\r\n" then Some (i + 4)
      else go (i + 1)
    in
    go from

  let parse_head head =
    match String.split_on_char '\n' head with
    | [] -> Alcotest.fail "raw: empty response head"
    | status_line :: header_lines ->
        let status_line = String.trim status_line in
        let status, reason =
          match String.split_on_char ' ' status_line with
          | _http :: code :: rest ->
              ( (match int_of_string_opt code with
                | Some c -> c
                | None -> Alcotest.failf "raw: bad status line %S" status_line),
                String.concat " " rest )
          | _ -> Alcotest.failf "raw: bad status line %S" status_line
        in
        let headers =
          List.filter_map
            (fun line ->
              let line = String.trim line in
              match String.index_opt line ':' with
              | None -> None
              | Some i ->
                  Some
                    ( String.lowercase_ascii (String.sub line 0 i),
                      String.trim
                        (String.sub line (i + 1) (String.length line - i - 1))
                    ))
            header_lines
        in
        (status, reason, headers)

  (* Read one response from [fd] given [leftover] bytes already read;
     returns it plus the unconsumed tail.  Body framing: HEAD and 304
     have none; otherwise Content-Length; otherwise read to close. *)
  let read_response ?(head_request = false) fd leftover =
    let acc = Buffer.create 4096 in
    Buffer.add_string acc leftover;
    let head_end =
      let rec wait () =
        match find_head_end (Buffer.contents acc) 0 with
        | Some e -> e
        | None ->
            let buf = Bytes.create 16384 in
            (match Unix.read fd buf 0 16384 with
            | 0 -> Alcotest.fail "raw: connection closed before response head"
            | n -> Buffer.add_subbytes acc buf 0 n);
            wait ()
      in
      wait ()
    in
    let all = Buffer.contents acc in
    let head = String.sub all 0 head_end in
    let status, reason, headers = parse_head head in
    let body, rest =
      if head_request || status = 304 then ("", String.sub all head_end (String.length all - head_end))
      else
        match List.assoc_opt "content-length" headers with
        | Some len_s ->
            let len = int_of_string (String.trim len_s) in
            let acc = Buffer.create (String.length all) in
            Buffer.add_string acc all;
            while Buffer.length acc < head_end + len do
              let buf = Bytes.create 16384 in
              match Unix.read fd buf 0 16384 with
              | 0 -> Alcotest.fail "raw: connection closed mid-body"
              | n -> Buffer.add_subbytes acc buf 0 n
            done;
            let all = Buffer.contents acc in
            ( String.sub all head_end len,
              String.sub all (head_end + len)
                (String.length all - head_end - len) )
        | None ->
            let acc2 = Buffer.create 4096 in
            Buffer.add_string acc2 all;
            read_until_close fd acc2;
            let all = Buffer.contents acc2 in
            (String.sub all head_end (String.length all - head_end), "")
    in
    ({ status; reason; headers; body; raw = head ^ body }, rest)

  let write_request fd ~meth ~target ~headers ~close =
    let conn = if close then "close" else "keep-alive" in
    let payload =
      Printf.sprintf "%s %s HTTP/1.1\r\nHost: conformance\r\nConnection: %s\r\n"
        meth target conn
      ^ String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
      ^ "\r\n"
    in
    ignore (Unix.write_substring fd payload 0 (String.length payload))

  (* One-shot: connect, send, read the whole close-delimited response.
     The body is everything after the head with no framing applied, so a
     304 or HEAD response that wrongly carried payload bytes shows up as
     a non-empty body rather than being silently skipped. *)
  let request ~port ?(meth = "GET") ?(headers = []) target =
    let fd = connect ~port in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_request fd ~meth ~target ~headers ~close:true;
        let acc = Buffer.create 8192 in
        read_until_close fd acc;
        let all = Buffer.contents acc in
        match find_head_end all 0 with
        | None ->
            Alcotest.failf "raw: no response head in %d bytes"
              (String.length all)
        | Some head_end ->
            let head = String.sub all 0 head_end in
            let status, reason, headers = parse_head head in
            {
              status;
              reason;
              headers;
              body = String.sub all head_end (String.length all - head_end);
              raw = all;
            })

  (* Persistent connection: requests processed strictly in order by the
     server, which the send-path counter tests rely on. *)
  type session = { fd : Unix.file_descr; mutable leftover : string }

  let open_session ~port = { fd = connect ~port; leftover = "" }

  let session_request s ?(meth = "GET") ?(headers = []) target =
    write_request s.fd ~meth ~target ~headers ~close:false;
    let r, rest = read_response ~head_request:(meth = "HEAD") s.fd s.leftover in
    s.leftover <- rest;
    r

  let close_session s = try Unix.close s.fd with Unix.Unix_error _ -> ()

  (* Replace volatile header values (Date) so responses from servers
     started at different moments compare byte-for-byte. *)
  let mask_dates raw =
    let b = Buffer.create (String.length raw) in
    let lines = String.split_on_char '\n' raw in
    List.iteri
      (fun i line ->
        if i > 0 then Buffer.add_char b '\n';
        let lower = String.lowercase_ascii line in
        if
          String.length lower >= 5
          && String.sub lower 0 5 = "date:"
        then Buffer.add_string b "date: <masked>\r"
        else Buffer.add_string b line)
      lines;
    Buffer.contents b
end
