(* lib/guard — admission control and load shedding.

   Unit tests drive the policy state machine with a virtual clock (the
   guard owns no sockets or timers, so every verdict is deterministic);
   the live tests then check the wiring: refusals carry the right
   status and Retry-After on real loopback connections in the event
   loop and blocking (MT/MP) architectures, slow clients get 408 and a
   closed connection instead of a held slot, and the bounded helper
   queue answers early 503 rather than queueing without limit.  The
   sharded guard tests live in {!Test_sharded} (domains must spawn
   after every fork-based test). *)

module Guard = Flash_guard.Guard
module Server = Flash_live.Server
module Client = Flash_live.Client
open Test_status

let vclock t () = !t

let admit = function Guard.Admit -> true | Guard.Reject _ -> false

let reject reason = function
  | Guard.Reject r when r = reason -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Satellite: the overload status codes and the Retry-After helper     *)
(* ------------------------------------------------------------------ *)

let test_overload_statuses () =
  Alcotest.(check int) "408 code" 408 (Http.Status.code Http.Status.Request_timeout);
  Alcotest.(check int) "429 code" 429 (Http.Status.code Http.Status.Too_many_requests);
  Alcotest.(check int) "503 code" 503 (Http.Status.code Http.Status.Service_unavailable);
  Alcotest.(check string) "429 reason" "Too Many Requests"
    (Http.Status.reason Http.Status.Too_many_requests);
  Alcotest.(check string) "503 reason" "Service Unavailable"
    (Http.Status.reason Http.Status.Service_unavailable)

let test_retry_after_header () =
  let name, value = Http.Response.retry_after 2 in
  Alcotest.(check string) "header name" "Retry-After" name;
  Alcotest.(check string) "delta-seconds" "2" value;
  Alcotest.(check string) "zero is legal" "0"
    (snd (Http.Response.retry_after 0));
  Alcotest.check_raises "negative refused"
    (Invalid_argument "Response.retry_after: negative delay") (fun () ->
      ignore (Http.Response.retry_after (-1)))

(* ------------------------------------------------------------------ *)
(* Policy unit tests (virtual clock)                                   *)
(* ------------------------------------------------------------------ *)

let test_default_inert () =
  Alcotest.(check bool) "defaults disabled" false
    (Guard.enabled Guard.default_config);
  Alcotest.(check bool) "any limit enables" true
    (Guard.enabled
       { Guard.default_config with Guard.max_conns_per_ip = Some 1 });
  Alcotest.(check bool) "header deadline enables" true
    (Guard.enabled { Guard.default_config with Guard.header_deadline = 1. });
  let g = Guard.create Guard.default_config in
  for _ = 1 to 50 do
    Alcotest.(check bool) "inert admits connects" true
      (admit (Guard.on_connect g ~peer:"10.0.0.1"));
    Alcotest.(check bool) "inert admits requests" true
      (admit (Guard.on_request g ~peer:"10.0.0.1"))
  done;
  Alcotest.(check int) "nothing shed" 0 (Guard.shed_total g)

let test_conn_cap () =
  let g =
    Guard.create { Guard.default_config with Guard.max_conns_per_ip = Some 2 }
  in
  Alcotest.(check bool) "first admits" true
    (admit (Guard.on_connect g ~peer:"a"));
  Alcotest.(check bool) "second admits" true
    (admit (Guard.on_connect g ~peer:"a"));
  Alcotest.(check bool) "third refused" true
    (reject Guard.Conn_limit (Guard.on_connect g ~peer:"a"));
  Alcotest.(check bool) "other peer unaffected" true
    (admit (Guard.on_connect g ~peer:"b"));
  Guard.on_disconnect g ~peer:"a";
  Alcotest.(check bool) "slot freed on disconnect" true
    (admit (Guard.on_connect g ~peer:"a"));
  Alcotest.(check int) "one shed, reason-labeled" 1
    (Guard.shed_count g Guard.Conn_limit);
  Alcotest.(check int) "total matches" 1 (Guard.shed_total g)

let test_rate_window_slides () =
  let now = ref 0. in
  let g =
    Guard.create ~clock:(vclock now)
      {
        Guard.default_config with
        Guard.max_rps_per_ip = Some 2.;
        rps_window = 1.0;
      }
  in
  let p = "a" in
  Alcotest.(check bool) "1st in window" true (admit (Guard.on_request g ~peer:p));
  Alcotest.(check bool) "2nd in window" true (admit (Guard.on_request g ~peer:p));
  Alcotest.(check bool) "3rd at cap refused" true
    (reject Guard.Rate_limit (Guard.on_request g ~peer:p));
  (* Sliding overlap: at t=1.2 the previous bucket (2 requests) still
     covers 80% of the window, estimate 1.6/s < 2 — one more fits,
     after which 2*0.8 + 1 = 2.6/s is over the cap again. *)
  now := 1.2;
  Alcotest.(check bool) "overlap leaves room for one" true
    (admit (Guard.on_request g ~peer:p));
  Alcotest.(check bool) "then over the cap" true
    (reject Guard.Rate_limit (Guard.on_request g ~peer:p));
  (* Two full windows later the history has aged out entirely. *)
  now := 3.5;
  Alcotest.(check bool) "cold window admits" true
    (admit (Guard.on_request g ~peer:p));
  Alcotest.(check int) "rate sheds counted" 2
    (Guard.shed_count g Guard.Rate_limit)

let test_pressure_ladder () =
  let g =
    Guard.create { Guard.default_config with Guard.slo_shed = true }
  in
  let check name lvl = Alcotest.(check int) name lvl (Guard.level_code (Guard.level g)) in
  check "starts normal" 0;
  Guard.note_pressure g ~state_code:1 ~burn:0.1;
  check "degraded sheds idle" 1;
  Guard.note_pressure g ~state_code:2 ~burn:0.3;
  check "breached sheds new" 2;
  Alcotest.(check bool) "admission refused under shed_new" true
    (reject Guard.Admission (Guard.on_connect g ~peer:"a"));
  Alcotest.(check bool) "queue still admits under shed_new" true
    (admit (Guard.queue_admission g));
  Guard.note_pressure g ~state_code:2 ~burn:0.6;
  check "deep burn sheds queue" 3;
  Alcotest.(check bool) "queue refused under shed_queue" true
    (reject Guard.Helper_queue (Guard.queue_admission g));
  Guard.note_pressure g ~state_code:0 ~burn:0.;
  check "recovers to normal" 0;
  Alcotest.(check bool) "admission restored" true
    (admit (Guard.on_connect g ~peer:"a"));
  (* Without the opt-in flag the sensor input is ignored. *)
  let off = Guard.create { Guard.default_config with Guard.max_conns_per_ip = Some 9 } in
  Guard.note_pressure off ~state_code:2 ~burn:0.9;
  Alcotest.(check int) "slo_shed off ignores pressure" 0
    (Guard.level_code (Guard.level off))

let test_slow_client_verdicts () =
  let cfg = { Guard.default_config with Guard.header_deadline = 0.5 } in
  Alcotest.(check bool) "within deadline" false
    (Guard.header_overdue cfg ~started:10. ~now:10.4);
  Alcotest.(check bool) "past deadline" true
    (Guard.header_overdue cfg ~started:10. ~now:10.6);
  Alcotest.(check bool) "deadline off never fires" false
    (Guard.header_overdue Guard.default_config ~started:0. ~now:1e9);
  let cfg = { Guard.default_config with Guard.min_byte_rate = 100. } in
  Alcotest.(check bool) "below the floor stalls" true
    (Guard.transfer_stalled cfg ~bytes_moved:150 ~interval:2.);
  Alcotest.(check bool) "at the floor is fine" false
    (Guard.transfer_stalled cfg ~bytes_moved:250 ~interval:2.);
  Alcotest.(check bool) "floor off never stalls" false
    (Guard.transfer_stalled Guard.default_config ~bytes_moved:0 ~interval:2.)

let test_sweep_prunes () =
  let now = ref 0. in
  let g =
    Guard.create ~clock:(vclock now)
      { Guard.default_config with Guard.max_conns_per_ip = Some 8 }
  in
  ignore (Guard.on_connect g ~peer:"idle");
  Guard.on_disconnect g ~peer:"idle";
  ignore (Guard.on_connect g ~peer:"live");
  Alcotest.(check int) "both tracked" 2 (Guard.tracked_peers g);
  now := 10.;
  Guard.sweep g;
  Alcotest.(check int) "cold ledger dropped, live one kept" 1
    (Guard.tracked_peers g);
  ignore (Guard.on_request g ~peer:"fresh");
  Guard.sweep g;
  Alcotest.(check int) "warm rate window survives the sweep" 2
    (Guard.tracked_peers g)

let test_reason_labels () =
  let labels = List.map Guard.reason_label Guard.all_reasons in
  Alcotest.(check int) "labels distinct"
    (List.length labels)
    (List.length (List.sort_uniq compare labels));
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "label %S is snake_case" l)
        true
        (String.length l > 0
        && String.for_all
             (function 'a' .. 'z' | '_' -> true | _ -> false)
             l))
    labels;
  let g = Guard.create Guard.default_config in
  List.iter (fun r -> Guard.shed g r) Guard.all_reasons;
  Guard.shed g Guard.Slow_header;
  Alcotest.(check int) "per-reason counts" 2
    (Guard.shed_count g Guard.Slow_header);
  Alcotest.(check int) "total sums reasons"
    (List.length Guard.all_reasons + 1)
    (Guard.shed_total g)

(* ------------------------------------------------------------------ *)
(* Live integration                                                    *)
(* ------------------------------------------------------------------ *)

let with_guarded ?(mode = Server.Amped) ?(tweak = fun c -> c) guard f =
  let docroot = Test_live.make_docroot () in
  let config =
    tweak { (Server.default_config ~docroot) with Server.mode; guard }
  in
  with_config config f

(* Read whatever the server sends on a raw connection until EOF (or a
   5s safety timeout): refusals at the door are written before the
   accept loop ever sees a request, so a silent connect must still
   yield a complete error response. *)
let raw_read_all port ~send =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      (match send with
      | "" -> ()
      | s -> ignore (Unix.write_substring fd s 0 (String.length s)));
      let buf = Bytes.create 4096 in
      let out = Buffer.create 256 in
      (try
         let rec loop () =
           match Unix.read fd buf 0 (Bytes.length buf) with
           | 0 -> ()
           | n ->
               Buffer.add_subbytes out buf 0 n;
               loop ()
         in
         loop ()
       with Unix.Unix_error _ -> ());
      Buffer.contents out)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let status_line_of s =
  match String.index_opt s '\r' with
  | Some i -> String.sub s 0 i
  | None -> s

(* A second connection past the per-peer cap is answered 429 with
   Retry-After and closed at the door — before a request is even sent —
   and the slot frees once the first connection goes away. *)
let test_live_conn_cap () =
  with_guarded
    { Guard.default_config with Guard.max_conns_per_ip = Some 1 }
    (fun server port ->
      let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
      let r = Client.Session.request session "/hello.txt" in
      Alcotest.(check int) "holder serves" 200 r.Client.status;
      let refusal = raw_read_all port ~send:"" in
      Alcotest.(check bool)
        (Printf.sprintf "refused at the door: %S" (status_line_of refusal))
        true
        (contains refusal " 429 Too Many Requests");
      Alcotest.(check bool) "carries Retry-After" true
        (contains refusal "retry-after:" || contains refusal "Retry-After:");
      Client.Session.close session;
      (* The disconnect is processed asynchronously; the slot must come
         back. *)
      let rec reconnect tries =
        let r = Client.get ~host:"127.0.0.1" ~port "/hello.txt" in
        if r.Client.status = 200 then r
        else if tries = 0 then r
        else begin
          Thread.delay 0.05;
          reconnect (tries - 1)
        end
      in
      Alcotest.(check int) "slot frees on disconnect" 200
        (reconnect 40).Client.status;
      let stats = Server.stats server in
      Alcotest.(check bool) "refusal counted as error" true
        (stats.Server.errors >= 1))

(* The per-peer rate cap answers 429 + Retry-After on the request path
   and drops the connection; once the window slides past, the same peer
   is served again. *)
let test_live_rate_cap ~mode () =
  with_guarded ~mode
    {
      Guard.default_config with
      Guard.max_rps_per_ip = Some 1.;
      rps_window = 0.5;
      retry_after = 3;
    }
    (fun _server port ->
      let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
      let r1 = Client.Session.request session "/hello.txt" in
      Alcotest.(check int) "first request fine" 200 r1.Client.status;
      let r2 = Client.Session.request session "/hello.txt" in
      Alcotest.(check int) "second rate-limited" 429 r2.Client.status;
      Alcotest.(check (option string))
        "Retry-After advertises the configured pause" (Some "3")
        (List.assoc_opt "retry-after" r2.Client.headers);
      Alcotest.(check (option string))
        "rate refusal closes the connection" (Some "close")
        (List.assoc_opt "connection" r2.Client.headers);
      Client.Session.close session;
      (* Two full windows later the ledger is cold again. *)
      Thread.delay 1.1;
      let r3 = Client.get ~host:"127.0.0.1" ~port "/hello.txt" in
      Alcotest.(check int) "window slides, peer served" 200 r3.Client.status)

(* A client that dribbles its header slower than the deadline gets 408
   and a closed connection — the byte-at-a-time defense the idle timer
   cannot provide (every byte refreshes [last_active]). *)
let test_live_slow_header () =
  with_guarded
    { Guard.default_config with Guard.header_deadline = 0.2 }
    (fun _server port ->
      let response =
        raw_read_all port ~send:"GET /hello.txt HTTP/1.1\r\nHost: x\r\n"
      in
      Alcotest.(check bool)
        (Printf.sprintf "partial header times out: %S"
           (status_line_of response))
        true
        (contains response " 408 Request Timeout");
      Alcotest.(check bool) "and the connection closes" true
        (contains response "connection: close"
        || contains response "Connection: close");
      (* A prompt client on the same server is untouched. *)
      let r = Client.get ~host:"127.0.0.1" ~port "/hello.txt" in
      Alcotest.(check int) "fast client unaffected" 200 r.Client.status)

(* With the helper queue bounded, a stampede of cold-disk work gets a
   mix of 200s and early 503+Retry-After — and every response arrives;
   nothing queues unboundedly or hangs. *)
let test_live_helper_queue_bound () =
  with_guarded
    ~tweak:(fun c ->
      {
        c with
        Server.helpers = 1;
        max_cached_file = 0;
        slow_read = Some (fun _ -> Thread.delay 0.08);
      })
    { Guard.default_config with Guard.max_helper_queue = Some 1 }
    (fun _server port ->
      let results = Array.make 6 0 in
      let advised = Array.make 6 false in
      let threads =
        List.init 6 (fun i ->
            Thread.create
              (fun () ->
                match Client.get ~host:"127.0.0.1" ~port "/hello.txt" with
                | r ->
                    results.(i) <- r.Client.status;
                    advised.(i) <-
                      List.mem_assoc "retry-after" r.Client.headers
                | exception _ -> results.(i) <- -1)
              ())
      in
      List.iter Thread.join threads;
      let count st = Array.fold_left (fun a s -> if s = st then a + 1 else a) 0 results in
      Alcotest.(check bool) "some served" true (count 200 >= 1);
      Alcotest.(check bool) "overflow got early 503" true (count 503 >= 1);
      Array.iteri
        (fun i st ->
          if st = 503 then
            Alcotest.(check bool) "every 503 carries Retry-After" true
              advised.(i))
        results;
      Alcotest.(check int) "every request answered" 0 (count (-1));
      (* One job in flight plus one queued is the whole allowed depth. *)
      let j = get_status_json port in
      let helper = member "helper" j in
      Alcotest.(check bool) "queue depth hwm bounded" true
        (to_int (member "queue_depth_hwm" helper) <= 2);
      Alcotest.(check bool) "refusals accounted" true
        (to_int (member "rejected" helper) >= 1);
      (* The sheds are visible, reason-labeled, in the guard block and
         /metrics. *)
      let guard = member "guard" j in
      Alcotest.(check bool) "guard sheds visible in JSON" true
        (to_int (member "shed_total" guard) >= 1);
      Alcotest.(check bool) "helper_queue reason labeled" true
        (to_int (member "helper_queue" (member "shed" guard)) >= 1);
      let m = (get port "/metrics").Client.body in
      (match Obs.Exposition.validate m with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "/metrics invalid with guard: %s" msg);
      Alcotest.(check bool) "flash_guard_shed_total exported" true
        (contains m "flash_guard_shed_total{reason=\"helper_queue\"}");
      Alcotest.(check bool) "guard state gauge exported" true
        (contains m "flash_guard_state"))

(* The status document: enabled guard renders a guard block (text and
   JSON, same numbers); disabled guard renders null and exports no
   flash_guard_* series. *)
let test_live_status_views () =
  with_guarded
    { Guard.default_config with Guard.max_conns_per_ip = Some 64 }
    (fun _server port ->
      ignore (Client.get ~host:"127.0.0.1" ~port "/hello.txt");
      let j = get_status_json port in
      let guard = member "guard" j in
      Alcotest.(check int) "level starts normal" 0
        (to_int (member "level" guard));
      Alcotest.(check bool) "peers tracked" true
        (to_int (member "tracked_peers" guard) >= 1);
      Alcotest.(check int) "nothing shed yet" 0
        (to_int (member "shed_total" guard));
      let text = (get port "/server-status").Client.body in
      Alcotest.(check bool) "text view has guard line" true
        (contains text "guard:");
      Alcotest.(check bool) "text view labels sheds" true
        (contains text "guard shed:"));
  let docroot = Test_live.make_docroot () in
  with_config (Server.default_config ~docroot) (fun _server port ->
      let j = get_status_json port in
      Alcotest.(check bool) "guard null when disabled" true
        (member "guard" j = Null);
      Alcotest.(check bool) "no guard series when disabled" false
        (contains (get port "/metrics").Client.body "flash_guard_"))

let suite =
  [
    Alcotest.test_case "overload status codes" `Quick test_overload_statuses;
    Alcotest.test_case "Retry-After helper" `Quick test_retry_after_header;
    Alcotest.test_case "default config is inert" `Quick test_default_inert;
    Alcotest.test_case "per-peer connection cap" `Quick test_conn_cap;
    Alcotest.test_case "sliding rate window" `Quick test_rate_window_slides;
    Alcotest.test_case "pressure ladder" `Quick test_pressure_ladder;
    Alcotest.test_case "slow-client verdicts" `Quick test_slow_client_verdicts;
    Alcotest.test_case "sweep prunes cold ledgers" `Quick test_sweep_prunes;
    Alcotest.test_case "shed reasons and counters" `Quick test_reason_labels;
    Alcotest.test_case "conn cap refuses at the door (429)" `Quick
      test_live_conn_cap;
    Alcotest.test_case "rate cap 429 + Retry-After (event loop)" `Quick
      (test_live_rate_cap ~mode:Server.Amped);
    Alcotest.test_case "rate cap 429 + Retry-After (MT)" `Quick
      (test_live_rate_cap ~mode:(Server.Mt 2));
    Alcotest.test_case "rate cap 429 + Retry-After (MP)" `Quick
      (test_live_rate_cap ~mode:(Server.Mp 2));
    Alcotest.test_case "slow header gets 408" `Quick test_live_slow_header;
    Alcotest.test_case "bounded helper queue sheds 503" `Quick
      test_live_helper_queue_bound;
    Alcotest.test_case "status views and metrics" `Quick test_live_status_views;
  ]
