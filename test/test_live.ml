(* End-to-end tests of the live Unix server over real loopback sockets. *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let make_docroot () =
  let dir = Filename.temp_file "flash_docroot" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Unix.mkdir (Filename.concat dir "sub") 0o755;
  Unix.mkdir (Filename.concat dir "cgi-bin") 0o755;
  write_file (Filename.concat dir "index.html") "<html>home</html>";
  write_file (Filename.concat dir "hello.txt") "hello live world";
  write_file (Filename.concat dir "sub/index.html") "<html>sub</html>";
  write_file (Filename.concat dir "big.bin") (String.make 300_000 'B');
  let cgi = Filename.concat dir "cgi-bin/echo.sh" in
  write_file cgi "#!/bin/sh\necho \"query=$QUERY_STRING method=$REQUEST_METHOD\"\n";
  Unix.chmod cgi 0o755;
  dir

let with_server ?(mode = Flash_live.Server.Amped) f =
  let docroot = make_docroot () in
  let config =
    { (Flash_live.Server.default_config ~docroot) with Flash_live.Server.mode }
  in
  let server = Flash_live.Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Flash_live.Server.stop server)
    (fun () -> f server (Flash_live.Server.port server))

let get port path = Flash_live.Client.get ~host:"127.0.0.1" ~port path

let test_basic_get mode () =
  with_server ~mode (fun server port ->
      let r = get port "/hello.txt" in
      Alcotest.(check int) "status" 200 r.Flash_live.Client.status;
      Alcotest.(check string) "body" "hello live world" r.Flash_live.Client.body;
      Alcotest.(check (option string)) "content type" (Some "text/plain")
        (List.assoc_opt "content-type" r.Flash_live.Client.headers);
      ignore server)

let test_index () =
  with_server (fun _ port ->
      let r = get port "/" in
      Alcotest.(check int) "status" 200 r.Flash_live.Client.status;
      Alcotest.(check string) "body" "<html>home</html>" r.Flash_live.Client.body;
      let r2 = get port "/sub/" in
      Alcotest.(check string) "subdir index" "<html>sub</html>"
        r2.Flash_live.Client.body)

let test_not_found () =
  with_server (fun _ port ->
      let r = get port "/nope.html" in
      Alcotest.(check int) "404" 404 r.Flash_live.Client.status)

let test_forbidden_escape () =
  with_server (fun _ port ->
      let r = get port "/../../etc/passwd" in
      Alcotest.(check int) "403" 403 r.Flash_live.Client.status)

let test_head () =
  with_server (fun _ port ->
      let r = Flash_live.Client.get ~meth:"HEAD" ~host:"127.0.0.1" ~port "/hello.txt" in
      Alcotest.(check int) "status" 200 r.Flash_live.Client.status;
      Alcotest.(check string) "no body" "" r.Flash_live.Client.body;
      Alcotest.(check (option string)) "length advertised" (Some "16")
        (List.assoc_opt "content-length" r.Flash_live.Client.headers))

let test_large_file_streams () =
  let docroot = make_docroot () in
  let config =
    {
      (Flash_live.Server.default_config ~docroot) with
      (* Force the streaming path: cache only tiny files. *)
      Flash_live.Server.max_cached_file = 1024;
    }
  in
  let server = Flash_live.Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Flash_live.Server.stop server)
    (fun () ->
      let r = get (Flash_live.Server.port server) "/big.bin" in
      Alcotest.(check int) "status" 200 r.Flash_live.Client.status;
      Alcotest.(check int) "full body" 300_000
        (String.length r.Flash_live.Client.body))

let test_keep_alive_session () =
  with_server (fun server port ->
      let session = Flash_live.Client.Session.connect ~host:"127.0.0.1" ~port () in
      Fun.protect
        ~finally:(fun () -> Flash_live.Client.Session.close session)
        (fun () ->
          let r1 = Flash_live.Client.Session.request session "/hello.txt" in
          let r2 = Flash_live.Client.Session.request session "/index.html" in
          let r3 = Flash_live.Client.Session.request session "/hello.txt" in
          Alcotest.(check (list int)) "three 200s" [ 200; 200; 200 ]
            [ r1.Flash_live.Client.status; r2.Flash_live.Client.status;
              r3.Flash_live.Client.status ];
          Alcotest.(check string) "bodies correct" "hello live world"
            r3.Flash_live.Client.body);
      let stats = Flash_live.Server.stats server in
      Alcotest.(check int) "one connection" 1
        stats.Flash_live.Server.connections;
      Alcotest.(check int) "three requests" 3 stats.Flash_live.Server.requests)

let test_cache_hits () =
  with_server (fun server port ->
      ignore (get port "/hello.txt");
      ignore (get port "/hello.txt");
      ignore (get port "/hello.txt");
      let stats = Flash_live.Server.stats server in
      Alcotest.(check bool) "cache hits recorded" true
        (stats.Flash_live.Server.cache_hits >= 2))

let test_amped_uses_helpers () =
  with_server ~mode:Flash_live.Server.Amped (fun server port ->
      ignore (get port "/hello.txt");
      let stats = Flash_live.Server.stats server in
      Alcotest.(check bool) "helper used for cold file" true
        (stats.Flash_live.Server.helper_jobs >= 1))

let test_sped_no_helpers () =
  with_server ~mode:Flash_live.Server.Sped (fun server port ->
      ignore (get port "/hello.txt");
      let stats = Flash_live.Server.stats server in
      Alcotest.(check int) "no helper jobs" 0 stats.Flash_live.Server.helper_jobs)

let test_cgi () =
  with_server (fun _ port ->
      let r = get port "/cgi-bin/echo.sh?x=42" in
      Alcotest.(check int) "status" 200 r.Flash_live.Client.status;
      Alcotest.(check string) "cgi output" "query=x=42 method=GET\n"
        r.Flash_live.Client.body)

let test_cgi_missing () =
  with_server (fun _ port ->
      let r = get port "/cgi-bin/ghost.sh" in
      Alcotest.(check int) "404" 404 r.Flash_live.Client.status)

let test_concurrent_clients () =
  with_server (fun server port ->
      let results = Array.make 8 0 in
      let threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                for _ = 1 to 5 do
                  let r = get port "/hello.txt" in
                  if r.Flash_live.Client.status = 200 then
                    results.(i) <- results.(i) + 1
                done)
              ())
      in
      List.iter Thread.join threads;
      Alcotest.(check int) "all 40 succeeded" 40 (Array.fold_left ( + ) 0 results);
      let stats = Flash_live.Server.stats server in
      Alcotest.(check bool) "server counted them" true
        (stats.Flash_live.Server.requests >= 40))

let test_mp_mode () =
  with_server ~mode:(Flash_live.Server.Mp 2) (fun server port ->
      let r = get port "/hello.txt" in
      Alcotest.(check int) "status" 200 r.Flash_live.Client.status;
      Alcotest.(check string) "body" "hello live world" r.Flash_live.Client.body;
      (* A second connection exercises another worker. *)
      let r2 = get port "/index.html" in
      Alcotest.(check int) "second conn" 200 r2.Flash_live.Client.status;
      (* §4.2: children report per-request events over a pipe the parent
         consolidates.  The child's report races the client's read, so
         allow it a moment to arrive. *)
      let rec await_stats tries =
        let stats = Flash_live.Server.stats server in
        if stats.Flash_live.Server.requests >= 2 || tries = 0 then stats
        else begin
          Thread.delay 0.05;
          await_stats (tries - 1)
        end
      in
      let stats = await_stats 40 in
      Alcotest.(check int) "MP stats consolidated over IPC" 2
        stats.Flash_live.Server.requests)

let test_aligned_headers_on_wire () =
  (* Read the raw bytes: the response head must be 32-byte aligned. *)
  with_server (fun _ port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = "GET /hello.txt HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Bytes.create 65536 in
      let acc = Buffer.create 256 in
      let rec drain () =
        match Unix.read fd buf 0 65536 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes acc buf 0 n;
            drain ()
      in
      drain ();
      Unix.close fd;
      let raw = Buffer.contents acc in
      let rec find_head i =
        if i + 3 >= String.length raw then Alcotest.fail "no head terminator"
        else if String.sub raw i 4 = "\r\n\r\n" then i + 4
        else find_head (i + 1)
      in
      let head_len = find_head 0 in
      Alcotest.(check int) "head length aligned" 0 (head_len mod 32))

let suite =
  [
    Alcotest.test_case "AMPED basic GET" `Quick
      (test_basic_get Flash_live.Server.Amped);
    Alcotest.test_case "SPED basic GET" `Quick
      (test_basic_get Flash_live.Server.Sped);
    Alcotest.test_case "index resolution" `Quick test_index;
    Alcotest.test_case "404" `Quick test_not_found;
    Alcotest.test_case "403 on escape" `Quick test_forbidden_escape;
    Alcotest.test_case "HEAD" `Quick test_head;
    Alcotest.test_case "large file streams" `Quick test_large_file_streams;
    Alcotest.test_case "keep-alive session" `Quick test_keep_alive_session;
    Alcotest.test_case "file cache hits" `Quick test_cache_hits;
    Alcotest.test_case "AMPED helper jobs" `Quick test_amped_uses_helpers;
    Alcotest.test_case "SPED no helpers" `Quick test_sped_no_helpers;
    Alcotest.test_case "CGI" `Quick test_cgi;
    Alcotest.test_case "CGI missing script" `Quick test_cgi_missing;
    Alcotest.test_case "concurrent clients" `Quick test_concurrent_clients;
    Alcotest.test_case "MP mode" `Quick test_mp_mode;
    Alcotest.test_case "32-byte aligned heads on the wire" `Quick
      test_aligned_headers_on_wire;
  ]
