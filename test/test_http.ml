module Request = Http.Request
module Response = Http.Response
module Status = Http.Status

(* ------------------------- status ------------------------- *)

let test_status_codes () =
  Alcotest.(check int) "200" 200 (Status.code Status.Ok);
  Alcotest.(check int) "404" 404 (Status.code Status.Not_found);
  Alcotest.(check string) "line" "404 Not Found"
    (Status.line_fragment Status.Not_found);
  (* The HTTP/1.1 semantics statuses. *)
  Alcotest.(check string) "206" "206 Partial Content"
    (Status.line_fragment Status.Partial_content);
  Alcotest.(check string) "304" "304 Not Modified"
    (Status.line_fragment Status.Not_modified);
  Alcotest.(check string) "412" "412 Precondition Failed"
    (Status.line_fragment Status.Precondition_failed);
  Alcotest.(check string) "416" "416 Range Not Satisfiable"
    (Status.line_fragment Status.Range_not_satisfiable)

(* ------------------------- mime ------------------------- *)

let test_mime () =
  Alcotest.(check string) "html" "text/html" (Http.Mime.of_path "/a/b.html");
  Alcotest.(check string) "uppercase ext" "image/gif" (Http.Mime.of_path "/x.GIF");
  Alcotest.(check string) "unknown" "application/octet-stream"
    (Http.Mime.of_path "/x.weird");
  Alcotest.(check string) "no extension" "application/octet-stream"
    (Http.Mime.of_path "/README");
  Alcotest.(check string) "dot in dir only" "application/octet-stream"
    (Http.Mime.of_path "/v1.2/file");
  Alcotest.(check string) "trailing dot" "application/octet-stream"
    (Http.Mime.of_path "/file.")

(* ------------------------- dates ------------------------- *)

let test_date_epoch () =
  Alcotest.(check string) "epoch" "Thu, 01 Jan 1970 00:00:00 GMT"
    (Http.Http_date.format 0.)

let test_date_known () =
  (* The RFC 1123 example: Sun, 06 Nov 1994 08:49:37 GMT = 784111777. *)
  Alcotest.(check string) "rfc example" "Sun, 06 Nov 1994 08:49:37 GMT"
    (Http.Http_date.format 784111777.)

let test_date_civil () =
  Alcotest.(check (triple int int int)) "epoch day" (1970, 1, 1)
    (Http.Http_date.civil_of_days 0);
  Alcotest.(check (triple int int int)) "leap day" (2000, 2, 29)
    (Http.Http_date.civil_of_days 11016);
  Alcotest.(check int) "thursday" 4 (Http.Http_date.weekday_of_days 0)

(* ------------------------- request parsing ------------------------- *)

let parse_ok buf =
  match Request.parse buf with
  | Request.Complete (req, consumed) -> (req, consumed)
  | Request.Incomplete -> Alcotest.fail "unexpected Incomplete"
  | Request.Bad msg -> Alcotest.failf "unexpected Bad: %s" msg

let test_parse_simple_get () =
  let req, consumed = parse_ok "GET /index.html HTTP/1.0\r\n\r\n" in
  Alcotest.(check string) "path" "/index.html" req.Request.path;
  Alcotest.(check bool) "GET" true (req.Request.meth = Request.Get);
  Alcotest.(check (pair int int)) "version" (1, 0) req.Request.version;
  Alcotest.(check int) "consumed" 28 consumed;
  Alcotest.(check bool) "1.0 not keep-alive" false (Request.keep_alive req)

let test_parse_headers () =
  let req, _ =
    parse_ok
      "GET /x HTTP/1.1\r\nHost: example.com\r\nUser-Agent: test\r\nConnection: close\r\n\r\n"
  in
  Alcotest.(check (option string)) "host" (Some "example.com")
    (Request.header req "Host");
  Alcotest.(check (option string)) "case-insensitive" (Some "test")
    (Request.header req "user-agent");
  Alcotest.(check bool) "explicit close wins over 1.1" false
    (Request.keep_alive req)

let test_keep_alive_defaults () =
  let req11, _ = parse_ok "GET / HTTP/1.1\r\nHost: h\r\n\r\n" in
  Alcotest.(check bool) "1.1 default keep" true (Request.keep_alive req11);
  let req10ka, _ = parse_ok "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n" in
  Alcotest.(check bool) "1.0 + keep-alive header" true (Request.keep_alive req10ka)

let test_parse_query_and_decode () =
  let req, _ = parse_ok "GET /cgi-bin/run%20me?x=1&y=2 HTTP/1.0\r\n\r\n" in
  Alcotest.(check string) "decoded path" "/cgi-bin/run me" req.Request.path;
  Alcotest.(check (option string)) "query" (Some "x=1&y=2") req.Request.query

let test_parse_incremental () =
  (match Request.parse "GET /part" with
  | Request.Incomplete -> ()
  | _ -> Alcotest.fail "expected Incomplete");
  match Request.parse "GET /part HTTP/1.0\r\nHost: h\r\n" with
  | Request.Incomplete -> ()
  | _ -> Alcotest.fail "expected Incomplete (no blank line)"

let test_parse_pipelined_consumed () =
  let buf = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n" in
  let req, consumed = parse_ok buf in
  Alcotest.(check string) "first request" "/a" req.Request.path;
  let rest = String.sub buf consumed (String.length buf - consumed) in
  let req2, _ = parse_ok rest in
  Alcotest.(check string) "second request" "/b" req2.Request.path

let test_parse_lf_only () =
  let req, _ = parse_ok "GET /lf HTTP/1.0\nHost: h\n\n" in
  Alcotest.(check string) "path" "/lf" req.Request.path;
  Alcotest.(check (option string)) "header" (Some "h") (Request.header req "host")

let test_parse_http09 () =
  let req, _ = parse_ok "GET /old\r\n\r\n" in
  Alcotest.(check (pair int int)) "0.9" (0, 9) req.Request.version

let test_parse_bad () =
  let is_bad buf =
    match Request.parse buf with Request.Bad _ -> true | _ -> false
  in
  Alcotest.(check bool) "bad version" true (is_bad "GET / HTTP/9\r\n\r\n");
  Alcotest.(check bool) "relative target" true (is_bad "GET foo HTTP/1.0\r\n\r\n");
  Alcotest.(check bool) "garbage line" true (is_bad "ONE TWO THREE FOUR\r\n\r\n");
  Alcotest.(check bool) "oversized head" true
    (is_bad (String.make 20_000 'x'))

let test_head_and_post () =
  let req, _ = parse_ok "HEAD /h HTTP/1.0\r\n\r\n" in
  Alcotest.(check bool) "HEAD" true (req.Request.meth = Request.Head);
  let req2, _ = parse_ok "POST /p HTTP/1.0\r\n\r\n" in
  Alcotest.(check bool) "POST" true (req2.Request.meth = Request.Post);
  let req3, _ = parse_ok "BREW /c HTTP/1.0\r\n\r\n" in
  Alcotest.(check bool) "other" true (req3.Request.meth = Request.Other "BREW")

let test_normalize_path () =
  let check_norm input expected =
    Alcotest.(check (option string)) input expected (Request.normalize_path input)
  in
  check_norm "/" (Some "/");
  check_norm "/a/b.html" (Some "/a/b.html");
  check_norm "/a//b" (Some "/a/b");
  check_norm "/a/./b" (Some "/a/b");
  check_norm "/a/../b" (Some "/b");
  check_norm "/../etc/passwd" None;
  check_norm "/a/b/../../../x" None;
  check_norm "relative" None;
  check_norm "" None

let prop_parser_never_raises =
  Helpers.qcheck_case ~count:500 ~name:"parser total on arbitrary bytes"
    QCheck.(string_gen_of_size (Gen.int_range 0 200) Gen.char)
    (fun s ->
      match Request.parse s with
      | Request.Complete _ | Request.Incomplete | Request.Bad _ -> true)

let prop_roundtrip_simple =
  Helpers.qcheck_case ~name:"well-formed GET always parses"
    QCheck.(string_gen_of_size (Gen.int_range 1 30) Gen.printable)
    (fun name ->
      let clean =
        String.map
          (fun c -> if c = ' ' || c = '\r' || c = '\n' || c = '?' then '_' else c)
          name
      in
      let buf = "GET /" ^ clean ^ " HTTP/1.0\r\n\r\n" in
      match Request.parse buf with
      | Request.Complete (req, consumed) ->
          consumed = String.length buf
          && req.Request.raw_target = "/" ^ clean
      | _ -> false)

(* ------------------------- responses ------------------------- *)

let test_response_basic () =
  let h =
    Response.header ~status:Status.Ok ~content_type:"text/html"
      ~content_length:1234 ()
  in
  Alcotest.(check bool) "status line" true
    (String.length h > 17 && String.sub h 0 17 = "HTTP/1.0 200 OK\r\n");
  Alcotest.(check bool) "content length present" true
    (Helpers.contains ~affix:"Content-Length: 1234\r\n" h);
  Alcotest.(check bool) "ends with blank line" true
    (String.sub h (String.length h - 4) 4 = "\r\n\r\n")

let test_response_alignment () =
  (* Flash §5.5: padded headers are a multiple of 32 bytes. *)
  List.iter
    (fun len ->
      let h =
        Response.header ~status:Status.Ok ~content_type:"text/html"
          ~content_length:len ~align:32 ()
      in
      Alcotest.(check int)
        (Printf.sprintf "aligned for len %d" len)
        0
        (String.length h mod 32))
    [ 0; 1; 7; 100; 999; 12345; 1048576 ]

let test_response_alignment_varies_fields () =
  let h1 =
    Response.header ~status:Status.Ok ~content_length:5 ~align:32 ()
  in
  let h2 =
    Response.header ~status:Status.Ok ~content_length:55555 ~align:32 ()
  in
  Alcotest.(check int) "both aligned" 0
    ((String.length h1 mod 32) + (String.length h2 mod 32))

let test_response_keep_alive_header () =
  let h = Response.header ~status:Status.Ok ~keep_alive:true () in
  Alcotest.(check bool) "keep-alive" true
    (Helpers.contains ~affix:"Connection: keep-alive" h);
  let h2 = Response.header ~status:Status.Ok ~keep_alive:false () in
  Alcotest.(check bool) "close" true (Helpers.contains ~affix:"Connection: close" h2)

let test_response_parses_back () =
  (* Our own client-side framing: the header terminates with CRLFCRLF. *)
  let h =
    Response.header ~status:Status.Not_found ~content_type:"text/html"
      ~content_length:10 ~date:1000000. ~align:32 ()
  in
  Alcotest.(check bool) "single blank line at end" true
    (Helpers.contains ~affix:"\r\n\r\n" h)

let test_error_body () =
  let body = Response.error_body Status.Not_found in
  Alcotest.(check bool) "mentions status" true
    (Helpers.contains ~affix:"404 Not Found" body)

let prop_alignment =
  Helpers.qcheck_case ~name:"aligned headers are multiples of 32"
    QCheck.(int_bound 10_000_000)
    (fun len ->
      let h = Response.header ~status:Status.Ok ~content_length:len ~align:32 () in
      String.length h mod 32 = 0)

let suite =
  [
    Alcotest.test_case "status codes" `Quick test_status_codes;
    Alcotest.test_case "mime mapping" `Quick test_mime;
    Alcotest.test_case "date epoch" `Quick test_date_epoch;
    Alcotest.test_case "date rfc example" `Quick test_date_known;
    Alcotest.test_case "civil calendar" `Quick test_date_civil;
    Alcotest.test_case "parse simple GET" `Quick test_parse_simple_get;
    Alcotest.test_case "parse headers" `Quick test_parse_headers;
    Alcotest.test_case "keep-alive defaults" `Quick test_keep_alive_defaults;
    Alcotest.test_case "query and percent-decode" `Quick test_parse_query_and_decode;
    Alcotest.test_case "incremental parse" `Quick test_parse_incremental;
    Alcotest.test_case "pipelined consumed count" `Quick test_parse_pipelined_consumed;
    Alcotest.test_case "LF-only line endings" `Quick test_parse_lf_only;
    Alcotest.test_case "HTTP/0.9" `Quick test_parse_http09;
    Alcotest.test_case "malformed requests" `Quick test_parse_bad;
    Alcotest.test_case "HEAD and POST" `Quick test_head_and_post;
    Alcotest.test_case "path normalization" `Quick test_normalize_path;
    prop_parser_never_raises;
    prop_roundtrip_simple;
    Alcotest.test_case "response basics" `Quick test_response_basic;
    Alcotest.test_case "response 32-byte alignment" `Quick test_response_alignment;
    Alcotest.test_case "alignment across lengths" `Quick
      test_response_alignment_varies_fields;
    Alcotest.test_case "keep-alive header" `Quick test_response_keep_alive_header;
    Alcotest.test_case "header framing" `Quick test_response_parses_back;
    Alcotest.test_case "error body" `Quick test_error_body;
    prop_alignment;
  ]
