(* The event-readiness subsystem: timer-wheel properties (qcheck, with
   an injected clock), backend unit behaviour over every backend this
   machine offers, and end-to-end server checks — a backend × mode
   parity matrix, wheel-driven idle reaping, and the EMFILE shedding
   path via the accept_fault seam. *)

module Wheel = Evio.Timer_wheel
module Server = Flash_live.Server
module Client = Flash_live.Client

(* ------------------------------------------------------------------ *)
(* Timer wheel: unit cases                                             *)
(* ------------------------------------------------------------------ *)

let test_wheel_basic () =
  let w = Wheel.create ~now:0. () in
  Alcotest.(check (option (float 0.))) "empty wheel: no deadline" None
    (Wheel.next_deadline w);
  let _a = Wheel.schedule w ~at:0.3 "a" in
  let _b = Wheel.schedule w ~at:0.1 "b" in
  let _c = Wheel.schedule w ~at:0.2 "c" in
  (match Wheel.next_deadline w with
  | Some d -> Alcotest.(check bool) "deadline not late" true (d <= 0.1 +. 1e-9)
  | None -> Alcotest.fail "expected a deadline");
  Alcotest.(check (list string)) "nothing before first deadline" []
    (Wheel.advance w ~now:0.05);
  Alcotest.(check (list string)) "fires in deadline order" [ "b"; "c" ]
    (Wheel.advance w ~now:0.25);
  Alcotest.(check (list string)) "rest fires later" [ "a" ]
    (Wheel.advance w ~now:0.35);
  Alcotest.(check int) "drained" 0 (Wheel.pending w)

let test_wheel_cancel_reschedule () =
  let w = Wheel.create ~now:0. () in
  let a = Wheel.schedule w ~at:0.1 "a" in
  let b = Wheel.schedule w ~at:0.2 "b" in
  Wheel.cancel w a;
  let b' = Wheel.reschedule w b ~at:0.5 in
  Alcotest.(check (list string)) "cancelled and moved timers don't fire" []
    (Wheel.advance w ~now:0.3);
  Alcotest.(check (list string)) "rescheduled fires at new deadline" [ "b" ]
    (Wheel.advance w ~now:0.6);
  ignore b'

let test_wheel_overdue_and_far () =
  let w = Wheel.create ~slots:8 ~tick:0.05 ~now:10. () in
  (* Overdue at scheduling time: must still fire, immediately. *)
  let _p = Wheel.schedule w ~at:9. "past" in
  (* Beyond one wheel rotation (8 * 0.05 = 0.4 s): must not fire early. *)
  let _f = Wheel.schedule w ~at:12. "far" in
  Alcotest.(check (list string)) "overdue fires at once" [ "past" ]
    (Wheel.advance w ~now:10.);
  Alcotest.(check (list string)) "far entry doesn't fire a rotation early" []
    (Wheel.advance w ~now:10.5);
  Alcotest.(check (list string)) "far entry fires on time" [ "far" ]
    (Wheel.advance w ~now:12.1)

(* ------------------------------------------------------------------ *)
(* Timer wheel: properties                                             *)
(* ------------------------------------------------------------------ *)

(* Arbitrary schedules: deadlines in [0, 2] s, advanced in random
   steps.  The invariants: nothing fires before its deadline, firing
   order is deadline order, and everything live fires once the clock
   passes the last deadline. *)
let wheel_schedule_arb =
  QCheck.(
    pair
      (list_of_size Gen.(int_range 0 40) (float_bound_inclusive 2.0))
      (list_of_size Gen.(int_range 1 20) (float_bound_inclusive 0.3)))

let prop_wheel_no_early_all_eventually (deadlines, steps) =
  let w = Wheel.create ~slots:32 ~tick:0.02 ~now:0. () in
  List.iteri (fun i at -> ignore (Wheel.schedule w ~at (i, at))) deadlines;
  let fired = ref [] in
  let now = ref 0. in
  List.iter
    (fun step ->
      now := !now +. step;
      let batch = Wheel.advance w ~now:!now in
      List.iter
        (fun (i, at) ->
          if at > !now +. 1e-9 then
            QCheck.Test.fail_reportf "timer %d fired at %f before deadline %f"
              i !now at)
        batch;
      fired := !fired @ batch)
    steps;
  (* Push past every deadline: all live timers must have fired. *)
  now := 3.5;
  fired := !fired @ Wheel.advance w ~now:!now;
  List.length !fired = List.length deadlines && Wheel.pending w = 0

let prop_wheel_fire_order (deadlines, steps) =
  let w = Wheel.create ~slots:32 ~tick:0.02 ~now:0. () in
  List.iteri (fun i at -> ignore (Wheel.schedule w ~at (i, at))) deadlines;
  let now = ref 0. in
  let ok = ref true in
  List.iter
    (fun step ->
      now := !now +. step;
      let batch = Wheel.advance w ~now:!now in
      let ds = List.map snd batch in
      if ds <> List.sort compare ds then ok := false)
    (steps @ [ 4.0 ]);
  !ok

let prop_wheel_cancelled_never_fire deadlines =
  let w = Wheel.create ~slots:32 ~tick:0.02 ~now:0. () in
  let timers =
    List.mapi (fun i at -> (i, Wheel.schedule w ~at (i, at))) deadlines
  in
  (* Cancel every even-indexed timer. *)
  List.iter (fun (i, tm) -> if i mod 2 = 0 then Wheel.cancel w tm) timers;
  let batch = Wheel.advance w ~now:3.5 in
  List.for_all (fun (i, _) -> i mod 2 = 1) batch
  && List.length batch = List.length (List.filter (fun (i, _) -> i mod 2 = 1) timers)

(* ------------------------------------------------------------------ *)
(* Backends: unit behaviour over every available backend               *)
(* ------------------------------------------------------------------ *)

let each_backend f =
  List.iter
    (fun kind ->
      let name = Evio.name kind in
      let b = Evio.Backend.create kind in
      Fun.protect ~finally:(fun () -> Evio.Backend.close b) (fun () -> f name b))
    (Evio.all_available ())

let test_backend_pipe_readiness () =
  each_backend (fun name b ->
      let r, w = Unix.pipe () in
      Fun.protect
        ~finally:(fun () -> Unix.close r; Unix.close w)
        (fun () ->
          Evio.Backend.register b r ~read:true ~write:false;
          Alcotest.(check (list int))
            (name ^ ": empty pipe not readable")
            []
            (List.map (fun _ -> 0) (Evio.Backend.wait b ~timeout:(Some 0.)));
          ignore (Unix.write w (Bytes.of_string "x") 0 1);
          (match Evio.Backend.wait b ~timeout:(Some 1.) with
          | [ ev ] ->
              Alcotest.(check bool) (name ^ ": readable") true ev.Evio.readable
          | evs ->
              Alcotest.failf "%s: expected 1 event, got %d" name
                (List.length evs));
          (* Write side: a fresh pipe is writable. *)
          Evio.Backend.register b w ~read:false ~write:true;
          let evs = Evio.Backend.wait b ~timeout:(Some 1.) in
          Alcotest.(check bool)
            (name ^ ": write side reported writable")
            true
            (List.exists (fun e -> e.Evio.fd = w && e.Evio.writable) evs);
          (* Interest off: no events at all. *)
          Evio.Backend.modify b r ~read:false ~write:false;
          Evio.Backend.modify b w ~read:false ~write:false;
          Alcotest.(check int)
            (name ^ ": no interest, no events")
            0
            (List.length (Evio.Backend.wait b ~timeout:(Some 0.)));
          (* Interest back on after parking: events return. *)
          Evio.Backend.modify b r ~read:true ~write:false;
          Alcotest.(check bool)
            (name ^ ": re-armed after parking")
            true
            (Evio.Backend.wait b ~timeout:(Some 1.) <> []);
          Evio.Backend.deregister b r;
          Alcotest.(check int)
            (name ^ ": deregistered fd silent")
            0
            (List.length (Evio.Backend.wait b ~timeout:(Some 0.)))))

let test_backend_timeout () =
  each_backend (fun name b ->
      let r, w = Unix.pipe () in
      Fun.protect
        ~finally:(fun () -> Unix.close r; Unix.close w)
        (fun () ->
          Evio.Backend.register b r ~read:true ~write:false;
          let t0 = Unix.gettimeofday () in
          let evs = Evio.Backend.wait b ~timeout:(Some 0.05) in
          let dt = Unix.gettimeofday () -. t0 in
          Alcotest.(check int) (name ^ ": timeout yields no events") 0
            (List.length evs);
          Alcotest.(check bool)
            (name ^ ": timeout respected")
            true (dt >= 0.04 && dt < 1.0)))

let test_of_string () =
  Alcotest.(check bool) "select parses" true
    (Evio.of_string "select" = Ok Evio.Select);
  Alcotest.(check bool) "poll parses" true (Evio.of_string "poll" = Ok Evio.Poll);
  (match Evio.of_string "auto" with
  | Ok k -> Alcotest.(check bool) "auto is available" true (Evio.available k)
  | Error e -> Alcotest.fail e);
  match Evio.of_string "kqueue" with
  | Ok _ -> Alcotest.fail "kqueue should not parse"
  | Error msg ->
      Alcotest.(check bool) "error lists valid names" true
        (Helpers.contains ~affix:"select" msg)

(* select must refuse an fd it could never wait on (>= FD_SETSIZE)
   with Backend_full — the EINVAL-from-wait alternative kills the whole
   loop.  The fd number is fabricated: select's cap check is pure
   arithmetic and never touches the kernel, and Unix.file_descr is a
   plain int on the non-Windows platforms where the cap exists. *)
let test_select_fd_cap () =
  let cap = Evio.fd_setsize () in
  if cap > 0 then begin
    let b = Evio.Backend.create Evio.Select in
    let over : Unix.file_descr = Obj.magic cap in
    (match Evio.Backend.register b over ~read:true ~write:false with
    | () -> Alcotest.fail "expected Backend_full for fd >= FD_SETSIZE"
    | exception Evio.Backend_full _ -> ());
    Alcotest.(check int) "over-cap fd not registered" 0 (Evio.Backend.fd_count b);
    let r, w = Unix.pipe () in
    Evio.Backend.register b r ~read:true ~write:false;
    Alcotest.(check int) "under-cap fd registers" 1 (Evio.Backend.fd_count b);
    Evio.Backend.close b;
    Unix.close r;
    Unix.close w
  end;
  (* poll and epoll take the same fd number without complaint. *)
  List.iter
    (fun kind ->
      if kind <> Evio.Select then begin
        let b = Evio.Backend.create kind in
        let r, w = Unix.pipe () in
        Evio.Backend.register b r ~read:true ~write:false;
        Alcotest.(check int)
          (Evio.name kind ^ " has no numeric cap check")
          1 (Evio.Backend.fd_count b);
        Evio.Backend.close b;
        Unix.close r;
        Unix.close w
      end)
    (Evio.all_available ())

(* ------------------------------------------------------------------ *)
(* Server: backend × mode parity matrix                                *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let make_docroot () =
  let dir = Filename.temp_file "flash_evio" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  write_file (Filename.concat dir "hello.txt") "hello evio world";
  write_file (Filename.concat dir "big.bin") (String.make 100_000 'E');
  dir

let with_server config f =
  let server = Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server (Server.port server))

let rec await ?(tries = 100) server pred =
  let stats = Server.stats server in
  if pred stats || tries = 0 then stats
  else begin
    Thread.delay 0.05;
    await ~tries:(tries - 1) server pred
  end

(* Every available backend must serve byte-identical responses in all
   four architectures, including keep-alive reuse. *)
let test_parity_matrix () =
  let docroot = make_docroot () in
  let modes = [ Server.Amped; Server.Sped; Server.Mp 2; Server.Mt 2 ] in
  let reference = ref None in
  List.iter
    (fun backend ->
      List.iter
        (fun mode ->
          let label =
            Printf.sprintf "%s/%s" (Evio.name backend)
              (match mode with
              | Server.Amped -> "amped"
              | Server.Sped -> "sped"
              | Server.Mp _ -> "mp"
              | Server.Mt _ -> "mt"
              | Server.Sharded _ -> "sharded")
          in
          let config =
            {
              (Server.default_config ~docroot) with
              Server.mode;
              event_backend = backend;
            }
          in
          with_server config (fun server port ->
              let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
              Fun.protect
                ~finally:(fun () -> Client.Session.close session)
                (fun () ->
                  let r1 = Client.Session.request session "/hello.txt" in
                  let r2 = Client.Session.request session "/big.bin" in
                  let r3 = Client.get ~host:"127.0.0.1" ~port "/missing" in
                  let got =
                    ( r1.Client.status,
                      r1.Client.body,
                      r2.Client.status,
                      r2.Client.body,
                      r3.Client.status )
                  in
                  (match !reference with
                  | None ->
                      Alcotest.(check int) (label ^ ": 200") 200 r1.Client.status;
                      Alcotest.(check string)
                        (label ^ ": body")
                        "hello evio world" r1.Client.body;
                      Alcotest.(check int)
                        (label ^ ": big 200")
                        200 r2.Client.status;
                      Alcotest.(check int)
                        (label ^ ": missing 404")
                        404 r3.Client.status;
                      reference := Some got
                  | Some expected ->
                      Alcotest.(check bool)
                        (label ^ ": byte-identical with reference")
                        true (got = expected));
                  ignore server)))
        modes)
    (Evio.all_available ())

(* The status endpoint must name the backend actually configured. *)
let test_status_reports_backend () =
  let docroot = make_docroot () in
  List.iter
    (fun backend ->
      let config =
        { (Server.default_config ~docroot) with Server.event_backend = backend }
      in
      with_server config (fun _server port ->
          let r = Client.get ~host:"127.0.0.1" ~port "/server-status?json" in
          Alcotest.(check bool)
            (Evio.name backend ^ " named in status JSON")
            true
            (Helpers.contains
               ~affix:(Printf.sprintf "\"backend\":\"%s\"" (Evio.name backend))
               r.Client.body);
          let rt = Client.get ~host:"127.0.0.1" ~port "/server-status" in
          Alcotest.(check bool)
            (Evio.name backend ^ " named in status text")
            true
            (Helpers.contains ~affix:(Evio.name backend) rt.Client.body)))
    (Evio.all_available ())

(* ------------------------------------------------------------------ *)
(* Server: wheel-driven idle reaping                                   *)
(* ------------------------------------------------------------------ *)

let test_idle_reaped_by_wheel () =
  let docroot = make_docroot () in
  List.iter
    (fun backend ->
      let config =
        {
          (Server.default_config ~docroot) with
          Server.idle_timeout = 0.2;
          event_backend = backend;
        }
      in
      with_server config (fun server port ->
          let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
          Fun.protect
            ~finally:(fun () -> Client.Session.close session)
            (fun () ->
              let r = Client.Session.request session "/hello.txt" in
              Alcotest.(check int) "served" 200 r.Client.status;
              (* The loop must notice the idle connection on its own —
                 no requests arrive to wake it. *)
              let s =
                await server (fun s -> s.Server.active_connections = 0)
              in
              Alcotest.(check int)
                (Evio.name backend ^ ": idle connection reaped")
                0 s.Server.active_connections;
              Alcotest.(check bool)
                (Evio.name backend ^ ": reaping fired a wheel timer")
                true
                (s.Server.timer_fires >= 1))))
    (Evio.all_available ())

(* ------------------------------------------------------------------ *)
(* Server: EMFILE shedding                                             *)
(* ------------------------------------------------------------------ *)

(* Inject accept failures via the config seam: the first [n] accept
   attempts behave as EMFILE.  The server must count them, pause the
   listener rather than spin, and serve normally once the fault
   clears. *)
let test_emfile_shedding mode () =
  let docroot = make_docroot () in
  let faults = ref 3 in
  let m = Mutex.create () in
  let fault () =
    Mutex.lock m;
    let inject = !faults > 0 in
    if inject then decr faults;
    Mutex.unlock m;
    inject
  in
  let config =
    {
      (Server.default_config ~docroot) with
      Server.mode;
      accept_fault = Some fault;
    }
  in
  with_server config (fun server port ->
      (* First connection hits the injected EMFILE: the listener pauses,
         then the backoff timer re-arms it and the pending connection
         (still queued in the kernel) is accepted and served. *)
      let r = Client.get ~host:"127.0.0.1" ~port "/hello.txt" in
      Alcotest.(check int) "served after shedding" 200 r.Client.status;
      Alcotest.(check string) "body intact" "hello evio world" r.Client.body;
      let s = await server (fun s -> s.Server.accept_emfile >= 1) in
      Alcotest.(check bool) "shed accepts counted" true
        (s.Server.accept_emfile >= 1);
      (* Once the fault is gone, service is normal. *)
      let r2 = Client.get ~host:"127.0.0.1" ~port "/hello.txt" in
      Alcotest.(check int) "healthy afterwards" 200 r2.Client.status)

let test_emfile_status_surfaced () =
  let docroot = make_docroot () in
  let faults = ref 2 in
  let fault () =
    let inject = !faults > 0 in
    if inject then decr faults;
    inject
  in
  let config =
    { (Server.default_config ~docroot) with Server.accept_fault = Some fault }
  in
  with_server config (fun server port ->
      let r = Client.get ~host:"127.0.0.1" ~port "/hello.txt" in
      Alcotest.(check int) "served" 200 r.Client.status;
      ignore (await server (fun s -> s.Server.accept_emfile >= 1));
      let st = Client.get ~host:"127.0.0.1" ~port "/server-status?json" in
      Alcotest.(check bool) "accept_emfile in status JSON" true
        (Helpers.contains ~affix:"\"accept_emfile\":" st.Client.body);
      ignore
        (int_of_string_opt "1"))

let suite =
  [
    Alcotest.test_case "wheel: schedule/advance basics" `Quick test_wheel_basic;
    Alcotest.test_case "wheel: cancel and reschedule" `Quick
      test_wheel_cancel_reschedule;
    Alcotest.test_case "wheel: overdue and beyond-rotation" `Quick
      test_wheel_overdue_and_far;
    Alcotest.test_case "select: FD_SETSIZE cap raises Backend_full" `Quick
      test_select_fd_cap;
    Helpers.qcheck_case ~count:150 ~name:"wheel: no early fires, all fire"
      wheel_schedule_arb prop_wheel_no_early_all_eventually;
    Helpers.qcheck_case ~count:150 ~name:"wheel: batches in deadline order"
      wheel_schedule_arb prop_wheel_fire_order;
    Helpers.qcheck_case ~count:150 ~name:"wheel: cancelled never fire"
      QCheck.(list_of_size Gen.(int_range 0 40) (float_bound_inclusive 2.0))
      prop_wheel_cancelled_never_fire;
    Alcotest.test_case "backends: pipe readiness and interest" `Quick
      test_backend_pipe_readiness;
    Alcotest.test_case "backends: wait timeout" `Quick test_backend_timeout;
    Alcotest.test_case "backends: of_string" `Quick test_of_string;
    Alcotest.test_case "server: backend x mode parity" `Slow test_parity_matrix;
    Alcotest.test_case "server: status names backend" `Quick
      test_status_reports_backend;
    Alcotest.test_case "server: idle reaped by wheel" `Slow
      test_idle_reaped_by_wheel;
    Alcotest.test_case "server: EMFILE shedding (amped)" `Quick
      (test_emfile_shedding Server.Amped);
    Alcotest.test_case "server: EMFILE shedding (mt)" `Quick
      (test_emfile_shedding (Server.Mt 2));
    Alcotest.test_case "server: EMFILE surfaces in status" `Quick
      test_emfile_status_surfaced;
  ]
