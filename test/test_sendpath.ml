(* The zero-copy gather-write send path: iovec slice bookkeeping under
   partial writes, (mtime, size) cache validation, eviction releasing
   mappings, byte-identical multi-megabyte responses in all four
   architectures, and the syscall/copy accounting that proves a cached
   GET is one writev with no userspace body copy. *)

module Server = Flash_live.Server
module Client = Flash_live.Client
module Sendq = Flash_live.Sendq
module File_cache = Flash_live.File_cache

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Position-dependent bytes: any dropped, duplicated or reordered range
   under a partial write changes the result, so byte-identity is a
   strong check. *)
let patterned n =
  String.init n (fun i -> Char.chr ((i * 31 + ((i lsr 8) * 7) + 13) land 0xff))

let make_docroot files =
  let dir = Filename.temp_file "flash_sendpath" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  List.iter (fun (name, body) -> write_file (Filename.concat dir name) body) files;
  dir

let with_config_server config f =
  let server = Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server (Server.port server))

let rec await ?(tries = 60) server pred =
  let stats = Server.stats server in
  if pred stats || tries = 0 then stats
  else begin
    Thread.delay 0.05;
    await ~tries:(tries - 1) server pred
  end

(* ------------------------------------------------------------------ *)
(* Send-queue resumption under arbitrary partial writes                *)
(* ------------------------------------------------------------------ *)

(* Drain a send queue through gather/advance with an adversarial
   short-write schedule, collecting the bytes a socket would have seen. *)
let drain_with_schedule q schedule =
  let out = Buffer.create 256 in
  let schedule = if schedule = [] then [ 1 ] else schedule in
  let sched = ref schedule in
  let next_budget () =
    let b = match !sched with [] -> sched := schedule; List.hd schedule | x :: rest -> sched := rest; x in
    max 1 b
  in
  while not (Sendq.is_empty q) do
    let slices = Sendq.gather q in
    let total = Iovec.total_length slices in
    let budget = min (next_budget ()) total in
    (* Copy [budget] bytes off the front of the gathered slices — what a
       socket accepting a short write would take. *)
    let taken = ref 0 in
    Array.iter
      (fun s ->
        let want = min s.Iovec.len (budget - !taken) in
        if want > 0 then begin
          Buffer.add_string out (Iovec.sub_string s.Iovec.buf ~off:s.Iovec.off ~len:want);
          taken := !taken + want
        end)
      slices;
    Sendq.advance q !taken
  done;
  Buffer.contents out

let sendq_resumption_prop (parts, schedule) =
  let q = Sendq.create () in
  List.iteri
    (fun i part ->
      (* Exercise both entry points. *)
      if i mod 2 = 0 then ignore (Sendq.push_string q part)
      else Sendq.push_slice q (Iovec.slice (Iovec.of_string part)))
    parts;
  let got = drain_with_schedule q schedule in
  got = String.concat "" parts

let test_sendq_resumption =
  Helpers.qcheck_case ~count:300 ~name:"sendq survives partial writes"
    QCheck.(pair (small_list small_string) (small_list small_nat))
    sendq_resumption_prop

(* The 206 send path queues a window into the middle of a cached body
   ([Iovec.slice ~off ~len]); resumption must keep honouring the
   window's start under any short-write schedule — a slice that quietly
   rewound to offset 0 would serve bytes outside the requested range. *)
let offset_slice_prop (n, off_seed, len_seed, schedule) =
  let n = max 1 n in
  let buf = Iovec.of_string (patterned n) in
  let off = off_seed mod n in
  let len = 1 + (len_seed mod (n - off)) in
  let q = Sendq.create () in
  ignore (Sendq.push_string q "H");
  Sendq.push_slice q (Iovec.slice ~off ~len buf);
  let got = drain_with_schedule q schedule in
  got = "H" ^ String.sub (patterned n) off len

let test_offset_slice_resumption =
  Helpers.qcheck_case ~count:300 ~name:"mid-buffer slices resume at offset"
    QCheck.(
      quad small_nat small_nat small_nat (small_list small_nat))
    offset_slice_prop

(* ------------------------------------------------------------------ *)
(* Cache validation and mapping release                                *)
(* ------------------------------------------------------------------ *)

let entry_of_body body ~mapped ~size mtime =
  {
    File_cache.body;
    mapped;
    mtime;
    size;
    etag = Printf.sprintf "\"%x-%x\"" (int_of_float mtime) size;
    encoding = None;
    header_keep = Iovec.of_string "K";
    header_close = Iovec.of_string "C";
    header_304_keep = Iovec.of_string "k";
    header_304_close = Iovec.of_string "c";
  }

let mk_entry ?(mapped = false) body mtime =
  entry_of_body (Iovec.of_string body) ~mapped ~size:(String.length body) mtime

let test_cache_validates_mtime_and_size () =
  let c = File_cache.create ~capacity_bytes:1_000_000 () in
  File_cache.insert c "/a" (mk_entry "abc" 10.);
  Alcotest.(check bool) "hit on exact (mtime, size)" true
    (File_cache.find c "/a" ~mtime:10. ~size:3 <> None);
  (* Same-second rewrite that changed the length: stale. *)
  Alcotest.(check bool) "size mismatch misses" true
    (File_cache.find c "/a" ~mtime:10. ~size:4 = None);
  Alcotest.(check bool) "stale entry dropped" true
    (File_cache.find c "/a" ~mtime:10. ~size:3 = None);
  File_cache.insert c "/a" (mk_entry "abc" 10.);
  Alcotest.(check bool) "mtime mismatch misses" true
    (File_cache.find c "/a" ~mtime:11. ~size:3 = None)

let with_mapped_entry f =
  let path = Filename.temp_file "flash_map" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      write_file path (patterned 8192);
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      let body, mapped =
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () -> File_cache.map_body fd ~size:8192)
      in
      f body mapped)

let test_eviction_releases_mappings () =
  with_mapped_entry (fun body mapped ->
      let entry mt = entry_of_body body ~mapped ~size:8192 mt in
      (* Mapping survives the descriptor close: the bytes still read. *)
      Alcotest.(check string) "mapping readable after close"
        (String.sub (patterned 8192) 0 64)
        (Iovec.sub_string body ~off:0 ~len:64);
      let c = File_cache.create ~capacity_bytes:10_000 () in
      File_cache.insert c "/one" (entry 1.);
      if mapped then
        Alcotest.(check int) "insert charges the gauge" 8192
          (File_cache.mapped_bytes c);
      (* A second mapped entry overflows the 10 KB budget: LRU evicts the
         first, and the gauge must fall back to one entry's worth. *)
      File_cache.insert c "/two" (entry 2.);
      Alcotest.(check int) "eviction uncharges" (if mapped then 8192 else 0)
        (File_cache.mapped_bytes c);
      Alcotest.(check bool) "old entry gone" true
        (File_cache.find c "/one" ~mtime:1. ~size:8192 = None);
      File_cache.remove c "/two";
      Alcotest.(check int) "explicit remove uncharges too" 0
        (File_cache.mapped_bytes c))

(* Regression for the remove/on_evict asymmetry: a stale hit (mtime or
   size mismatch) drops the entry through the evict hook, so the
   mapped-bytes gauge falls with it instead of drifting upward as stale
   entries are replaced. *)
let test_stale_drop_uncharges_gauge () =
  with_mapped_entry (fun body mapped ->
      if mapped then begin
        let entry mt = entry_of_body body ~mapped ~size:8192 mt in
        let c = File_cache.create ~capacity_bytes:100_000 () in
        File_cache.insert c "/f" (entry 1.);
        Alcotest.(check int) "charged" 8192 (File_cache.mapped_bytes c);
        (* The file was rewritten: the lookup detects staleness. *)
        Alcotest.(check bool) "stale lookup misses" true
          (File_cache.find c "/f" ~mtime:2. ~size:8192 = None);
        Alcotest.(check int) "stale drop uncharged the gauge" 0
          (File_cache.mapped_bytes c);
        (* Re-inserting the fresh entry charges once, not twice. *)
        File_cache.insert c "/f" (entry 2.);
        Alcotest.(check int) "fresh entry charged once" 8192
          (File_cache.mapped_bytes c)
      end)

let test_server_reports_mapped_bytes () =
  let body = patterned 4096 in
  let docroot = make_docroot [ ("page.bin", body) ] in
  let config = Server.default_config ~docroot in
  with_config_server config (fun server port ->
      let r = Client.get ~host:"127.0.0.1" ~port "/page.bin" in
      Alcotest.(check int) "200" 200 r.Client.status;
      let stats = await server (fun s -> s.Server.mapped_bytes > 0) in
      (* The mapping may legitimately have fallen back to a copy on an
         exotic filesystem; when it mapped, the stat must say so. *)
      if stats.Server.mapped_bytes > 0 then
        Alcotest.(check int) "mapped bytes = file size" 4096
          stats.Server.mapped_bytes)

(* ------------------------------------------------------------------ *)
(* Byte-identity across architectures                                  *)
(* ------------------------------------------------------------------ *)

(* 2.5 MB >> the 64 KB socket buffers: the response is forced through
   many partial writes, exercising offset-advance in every mode. *)
let big_body = lazy (patterned 2_500_000)

let test_multi_mb_identical mode () =
  let body = Lazy.force big_body in
  let docroot = make_docroot [ ("big.bin", body); ("small.txt", "tiny") ] in
  let config = { (Server.default_config ~docroot) with Server.mode } in
  with_config_server config (fun _server port ->
      let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
      Fun.protect
        ~finally:(fun () -> Client.Session.close session)
        (fun () ->
          (* Twice over one keep-alive connection: cold then cached. *)
          let r1 = Client.Session.request session "/big.bin" in
          let r2 = Client.Session.request session "/big.bin" in
          let r3 = Client.Session.request session "/small.txt" in
          Alcotest.(check int) "cold 200" 200 r1.Client.status;
          Alcotest.(check bool) "cold body identical" true
            (String.equal r1.Client.body body);
          Alcotest.(check bool) "cached body identical" true
            (String.equal r2.Client.body body);
          Alcotest.(check string) "session still in sync" "tiny"
            r3.Client.body))

let test_pipelined_large mode () =
  let body = Lazy.force big_body in
  let docroot = make_docroot [ ("big.bin", body); ("small.txt", "tiny") ] in
  let config = { (Server.default_config ~docroot) with Server.mode } in
  with_config_server config (fun _server port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (* Both requests land in one segment before the first response is
         written: the responses must come back in order, intact. *)
      let burst =
        "GET /big.bin HTTP/1.1\r\nHost: t\r\n\r\n"
        ^ "GET /small.txt HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
      in
      ignore (Unix.write_substring fd burst 0 (String.length burst));
      let buf = Bytes.create 65536 in
      let acc = Buffer.create (String.length body + 4096) in
      let rec drain () =
        match Unix.read fd buf 0 65536 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes acc buf 0 n;
            drain ()
        | exception Unix.Unix_error _ -> ()
      in
      drain ();
      Unix.close fd;
      let raw = Buffer.contents acc in
      (* Parse both responses by their Content-Length. *)
      let parse_one start =
        let rec find_head i =
          if i + 3 >= String.length raw then
            Alcotest.fail "response head not terminated"
          else if String.sub raw i 4 = "\r\n\r\n" then i + 4
          else find_head (i + 1)
        in
        let body_start = find_head start in
        let head = String.sub raw start (body_start - start) in
        let len =
          let lower = String.lowercase_ascii head in
          match Helpers.contains ~affix:"content-length:" lower with
          | false -> Alcotest.fail "no content-length"
          | true ->
              let rec find i =
                if String.sub lower i 15 = "content-length:" then i + 15
                else find (i + 1)
              in
              let i = find 0 in
              int_of_string (String.trim (String.sub lower i
                (String.index_from lower i '\r' - i)))
        in
        (String.sub raw body_start len, body_start + len)
      in
      let b1, next = parse_one 0 in
      let b2, _ = parse_one next in
      Alcotest.(check bool) "pipelined big body identical" true
        (String.equal b1 body);
      Alcotest.(check string) "pipelined second body" "tiny" b2)

(* ------------------------------------------------------------------ *)
(* Syscall/copy accounting: the acceptance criterion                   *)
(* ------------------------------------------------------------------ *)

(* A warm cached GET on the writev path must cost exactly one gather
   write and zero userspace body copies. *)
let test_cached_get_is_one_writev_zero_copies () =
  if not Iovec.have_writev then ()
  else begin
    let body = patterned 4096 in
    let docroot = make_docroot [ ("page.bin", body) ] in
    let config = Server.default_config ~docroot in
    Alcotest.(check bool) "writev on by default" true config.Server.use_writev;
    with_config_server config (fun server port ->
        let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
        Fun.protect
          ~finally:(fun () -> Client.Session.close session)
          (fun () ->
            (* Warm the cache (the cold request copies only headers).
               Await the warm writev itself, not just the request
               count: the client unblocks the moment the syscall
               completes, which can be before the loop thread has
               incremented the counter. *)
            let r1 = Client.Session.request session "/page.bin" in
            Alcotest.(check int) "warm 200" 200 r1.Client.status;
            let s0 =
              await server (fun s ->
                  s.Server.requests >= 1 && s.Server.writev_calls >= 1)
            in
            let r2 = Client.Session.request session "/page.bin" in
            Alcotest.(check bool) "cached body identical" true
              (String.equal r2.Client.body body);
            let s1 =
              await server (fun s ->
                  s.Server.writev_calls > s0.Server.writev_calls)
            in
            Alcotest.(check int) "exactly one writev" 1
              (s1.Server.writev_calls - s0.Server.writev_calls);
            Alcotest.(check int) "no scalar writes" 0
              (s1.Server.write_calls - s0.Server.write_calls);
            Alcotest.(check int) "zero bytes copied" 0
              (s1.Server.bytes_copied - s0.Server.bytes_copied)))
  end

(* The same request on the copying fallback shows what writev saves. *)
let test_fallback_copies () =
  let body = patterned 4096 in
  let docroot = make_docroot [ ("page.bin", body) ] in
  let config =
    { (Server.default_config ~docroot) with Server.use_writev = false }
  in
  with_config_server config (fun server port ->
      let session = Client.Session.connect ~host:"127.0.0.1" ~port () in
      Fun.protect
        ~finally:(fun () -> Client.Session.close session)
        (fun () ->
          let r1 = Client.Session.request session "/page.bin" in
          Alcotest.(check int) "warm 200" 200 r1.Client.status;
          let s0 = await server (fun s -> s.Server.requests >= 1) in
          let r2 = Client.Session.request session "/page.bin" in
          Alcotest.(check bool) "fallback body identical" true
            (String.equal r2.Client.body body);
          let s1 =
            await server (fun s -> s.Server.write_calls > s0.Server.write_calls)
          in
          Alcotest.(check bool) "fallback uses write" true
            (s1.Server.write_calls - s0.Server.write_calls >= 1);
          Alcotest.(check int) "fallback never writev" 0
            (s1.Server.writev_calls - s0.Server.writev_calls);
          Alcotest.(check bool) "fallback copies the body" true
            (s1.Server.bytes_copied - s0.Server.bytes_copied
            >= String.length body)))

(* MP children ship their send counters to the parent over the stats
   pipe ('v' records); the consolidated view must include them. *)
let test_mp_send_counters_consolidated () =
  let docroot = make_docroot [ ("page.bin", patterned 1024) ] in
  let config =
    { (Server.default_config ~docroot) with Server.mode = Server.Mp 2 }
  in
  with_config_server config (fun server port ->
      let r1 = Client.get ~host:"127.0.0.1" ~port "/page.bin" in
      let r2 = Client.get ~host:"127.0.0.1" ~port "/page.bin" in
      Alcotest.(check (list int)) "both 200" [ 200; 200 ]
        [ r1.Client.status; r2.Client.status ];
      let field (s : Server.stats) =
        if Iovec.have_writev then s.Server.writev_calls else s.Server.write_calls
      in
      let stats = await server (fun s -> field s >= 2) in
      Alcotest.(check bool) "children's send syscalls consolidated" true
        (field stats >= 2))

let suite =
  [
    test_sendq_resumption;
    test_offset_slice_resumption;
    Alcotest.test_case "cache validates (mtime, size)" `Quick
      test_cache_validates_mtime_and_size;
    Alcotest.test_case "eviction releases mappings" `Quick
      test_eviction_releases_mappings;
    Alcotest.test_case "stale drop uncharges gauge" `Quick
      test_stale_drop_uncharges_gauge;
    Alcotest.test_case "server reports mapped bytes" `Quick
      test_server_reports_mapped_bytes;
    Alcotest.test_case "2.5 MB identical (AMPED)" `Quick
      (test_multi_mb_identical Server.Amped);
    Alcotest.test_case "2.5 MB identical (SPED)" `Quick
      (test_multi_mb_identical Server.Sped);
    Alcotest.test_case "2.5 MB identical (MP)" `Quick
      (test_multi_mb_identical (Server.Mp 2));
    Alcotest.test_case "2.5 MB identical (MT)" `Quick
      (test_multi_mb_identical (Server.Mt 2));
    Alcotest.test_case "pipelined 2.5 MB + small (AMPED)" `Quick
      (test_pipelined_large Server.Amped);
    Alcotest.test_case "pipelined 2.5 MB + small (MP)" `Quick
      (test_pipelined_large (Server.Mp 2));
    Alcotest.test_case "cached GET = 1 writev, 0 copies" `Quick
      test_cached_get_is_one_writev_zero_copies;
    Alcotest.test_case "copying fallback counts its copies" `Quick
      test_fallback_copies;
    Alcotest.test_case "MP consolidates send counters" `Quick
      test_mp_send_counters_consolidated;
  ]
