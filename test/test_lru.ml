module Lru = Flash_util.Lru

let test_basic () =
  let lru = Lru.create ~capacity:3 () in
  Lru.add lru "a" 1 ~weight:1;
  Lru.add lru "b" 2 ~weight:1;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find lru "a");
  Alcotest.(check (option int)) "find missing" None (Lru.find lru "zz");
  Alcotest.(check int) "length" 2 (Lru.length lru);
  Alcotest.(check int) "weight" 2 (Lru.weight lru)

let test_eviction_order () =
  let evicted = ref [] in
  let lru = Lru.create ~on_evict:(fun k _ -> evicted := k :: !evicted) ~capacity:2 () in
  Lru.add lru "a" 1 ~weight:1;
  Lru.add lru "b" 2 ~weight:1;
  Lru.add lru "c" 3 ~weight:1;
  Alcotest.(check (list string)) "a evicted first" [ "a" ] !evicted;
  (* Touch b, then insert d: c is now least recent. *)
  ignore (Lru.find lru "b");
  Lru.add lru "d" 4 ~weight:1;
  Alcotest.(check (list string)) "c evicted second" [ "c"; "a" ] !evicted;
  Alcotest.(check bool) "b survives" true (Lru.mem lru "b")

let test_peek_does_not_promote () =
  let lru = Lru.create ~capacity:2 () in
  Lru.add lru "a" 1 ~weight:1;
  Lru.add lru "b" 2 ~weight:1;
  ignore (Lru.peek lru "a");
  Lru.add lru "c" 3 ~weight:1;
  Alcotest.(check bool) "a evicted despite peek" false (Lru.mem lru "a")

let test_weighted () =
  let lru = Lru.create ~capacity:100 () in
  Lru.add lru "big" 0 ~weight:60;
  Lru.add lru "mid" 1 ~weight:30;
  Lru.add lru "more" 2 ~weight:30;
  (* 60+30+30 > 100: "big" (LRU) must have been evicted. *)
  Alcotest.(check bool) "big evicted" false (Lru.mem lru "big");
  Alcotest.(check int) "weight within capacity" 60 (Lru.weight lru)

let test_oversized_single_entry () =
  let lru = Lru.create ~capacity:10 () in
  Lru.add lru "huge" 0 ~weight:100;
  Alcotest.(check bool) "admitted alone" true (Lru.mem lru "huge");
  Lru.add lru "small" 1 ~weight:1;
  Alcotest.(check bool) "huge evicted when company arrives" false
    (Lru.mem lru "huge")

let test_replace_reweighs () =
  let lru = Lru.create ~capacity:10 () in
  Lru.add lru "k" 1 ~weight:4;
  Lru.add lru "k" 2 ~weight:6;
  Alcotest.(check int) "weight replaced" 6 (Lru.weight lru);
  Alcotest.(check (option int)) "value replaced" (Some 2) (Lru.find lru "k");
  Alcotest.(check int) "single entry" 1 (Lru.length lru)

let test_remove () =
  let evicted = ref 0 in
  let lru = Lru.create ~on_evict:(fun _ _ -> incr evicted) ~capacity:5 () in
  Lru.add lru "a" 1 ~weight:2;
  Alcotest.(check (option int)) "removed value" (Some 1) (Lru.remove lru "a");
  Alcotest.(check int) "no on_evict for remove" 0 !evicted;
  Alcotest.(check int) "weight zero" 0 (Lru.weight lru);
  Alcotest.(check (option int)) "remove missing" None (Lru.remove lru "a")

(* ~evict:true routes explicit removal through the on_evict hook, so
   callers whose hook releases a resource (gauges, unmaps) no longer
   have to duplicate the cleanup by hand. *)
let test_remove_evict_runs_hook () =
  let gauge = ref 0 in
  let lru =
    Lru.create ~on_evict:(fun _ v -> gauge := !gauge - v) ~capacity:10 ()
  in
  Lru.add lru "a" 7 ~weight:1;
  gauge := 7;
  Alcotest.(check (option int)) "removed value" (Some 7)
    (Lru.remove ~evict:true lru "a");
  Alcotest.(check int) "hook released the resource" 0 !gauge;
  Alcotest.(check (option int)) "evict remove on missing key" None
    (Lru.remove ~evict:true lru "a");
  Alcotest.(check int) "no hook for missing key" 0 !gauge

let test_set_capacity_shrinks () =
  let lru = Lru.create ~capacity:10 () in
  for i = 1 to 10 do
    Lru.add lru i i ~weight:1
  done;
  Lru.set_capacity lru 3;
  Alcotest.(check int) "shrunk" 3 (Lru.length lru);
  Alcotest.(check bool) "most recent kept" true (Lru.mem lru 10);
  Alcotest.(check bool) "oldest gone" false (Lru.mem lru 1)

let test_fold_order () =
  let lru = Lru.create ~capacity:5 () in
  List.iter (fun k -> Lru.add lru k k ~weight:1) [ 1; 2; 3 ];
  ignore (Lru.find lru 1);
  let order = List.rev (Lru.fold lru ~init:[] ~f:(fun acc k _ -> k :: acc)) in
  Alcotest.(check (list int)) "MRU to LRU" [ 1; 3; 2 ] order;
  Alcotest.(check (option (pair int int))) "lru entry" (Some (2, 2)) (Lru.lru lru)

let test_clear () =
  let lru = Lru.create ~capacity:5 () in
  Lru.add lru "a" 1 ~weight:1;
  Lru.clear lru;
  Alcotest.(check int) "empty" 0 (Lru.length lru);
  Lru.add lru "b" 2 ~weight:1;
  Alcotest.(check bool) "usable after clear" true (Lru.mem lru "b")

let test_invalid () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Lru.create: capacity <= 0")
    (fun () -> ignore (Lru.create ~capacity:0 ()));
  let lru = Lru.create ~capacity:1 () in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Lru.add: negative weight") (fun () ->
      Lru.add lru "x" 1 ~weight:(-1))

let prop_capacity_respected =
  Helpers.qcheck_case ~name:"weight never exceeds capacity (multi-entry)"
    QCheck.(pair (int_range 1 50) (list (pair (int_range 0 9) (int_range 0 10))))
    (fun (cap, adds) ->
      let lru = Lru.create ~capacity:cap () in
      List.iter (fun (k, w) -> Lru.add lru k k ~weight:w) adds;
      Lru.weight lru <= cap || Lru.length lru = 1)

let prop_most_recent_present =
  Helpers.qcheck_case ~name:"most recently added key is always present"
    QCheck.(list (pair (int_range 0 9) (int_range 0 5)))
    (fun adds ->
      let lru = Lru.create ~capacity:20 () in
      List.for_all
        (fun (k, w) ->
          Lru.add lru k k ~weight:w;
          Lru.mem lru k)
        adds)

let suite =
  [
    Alcotest.test_case "basic add/find" `Quick test_basic;
    Alcotest.test_case "eviction order" `Quick test_eviction_order;
    Alcotest.test_case "peek does not promote" `Quick test_peek_does_not_promote;
    Alcotest.test_case "weighted eviction" `Quick test_weighted;
    Alcotest.test_case "oversized single entry" `Quick test_oversized_single_entry;
    Alcotest.test_case "replace re-weighs" `Quick test_replace_reweighs;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "remove ~evict runs hook" `Quick
      test_remove_evict_runs_hook;
    Alcotest.test_case "set_capacity shrinks" `Quick test_set_capacity_shrinks;
    Alcotest.test_case "fold order and lru" `Quick test_fold_order;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "invalid arguments" `Quick test_invalid;
    prop_capacity_respected;
    prop_most_recent_present;
  ]
