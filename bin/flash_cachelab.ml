(* flash-cachelab: offline cache-policy evaluator.

   Replays a workload trace (synthetic Zipf over a generated fileset, a
   SPECweb96-like stream, or a Common Log Format access log) through the
   {!Flash_cache} subsystem across a policy x cache-size grid, reporting
   request hit rate, byte hit rate and eviction counts, plus a miss-ratio
   curve per policy.

     dune exec bin/flash_cachelab.exe -- --json
     dune exec bin/flash_cachelab.exe -- --workload specweb --sizes 10%,50%
     dune exec bin/flash_cachelab.exe -- --trace access.log --policies lru,gdsf *)

open Cmdliner

type cell = {
  policy : Flash_cache.Policy.kind;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  admitted : int;
  rejected : int;
  hit_rate : float;
  byte_hit_rate : float;
}

(* One grid cell: replay the stream through a fresh store.  Values are
   unit — only the keys, weights and policy reactions matter. *)
let replay trace ~policy ~admission ~capacity =
  let store =
    Flash_cache.Store.create ~policy ~admission ~name:"cachelab" ~capacity ()
  in
  let byte_hits = ref 0 and byte_total = ref 0 in
  let n = Workload.Trace.length trace in
  for i = 0 to n - 1 do
    let path = Workload.Trace.request_path trace i in
    let size = Workload.Trace.request_size trace i in
    byte_total := !byte_total + size;
    match Flash_cache.Store.find store path with
    | Some () -> byte_hits := !byte_hits + size
    | None -> ignore (Flash_cache.Store.add store path () ~weight:(max 1 size))
  done;
  let s = Flash_cache.Store.stats store in
  {
    policy;
    capacity;
    hits = s.Flash_cache.Store.hits;
    misses = s.Flash_cache.Store.misses;
    evictions = s.Flash_cache.Store.evictions;
    admitted = s.Flash_cache.Store.admitted;
    rejected = s.Flash_cache.Store.rejected;
    hit_rate =
      (if n = 0 then 0. else float_of_int s.Flash_cache.Store.hits /. float_of_int n);
    byte_hit_rate =
      (if !byte_total = 0 then 0.
       else float_of_int !byte_hits /. float_of_int !byte_total);
  }

(* ------------------------------------------------------------------ *)
(* Workload construction                                               *)
(* ------------------------------------------------------------------ *)

let zipf_trace ~files ~requests ~alpha ~seed =
  let fileset = Workload.Fileset.generate (Workload.Fileset.cs_like ~files ~seed) in
  Workload.Trace.generate fileset ~length:requests ~alpha ~seed

(* SPECweb sampling yields paths; fold them back to fileset indices to
   build a replayable trace. *)
let specweb_trace ~directories ~requests ~seed =
  let sw = Workload.Specweb.generate ~directories ~seed in
  let fileset = Workload.Specweb.fileset sw in
  let index = Hashtbl.create 4096 in
  Array.iteri (fun i p -> Hashtbl.replace index p i) fileset.Workload.Fileset.paths;
  let rng = Sim.Rng.create ~seed in
  let requests =
    Array.init requests (fun _ ->
        Hashtbl.find index (Workload.Specweb.sample sw rng))
  in
  { Workload.Trace.fileset; requests }

let build_trace ~workload ~trace_file ~files ~requests ~alpha ~seed =
  match trace_file with
  | Some path -> ("clf:" ^ path, Workload.Trace.load_clf ~path)
  | None -> (
      match workload with
      | "zipf" -> ("zipf", zipf_trace ~files ~requests ~alpha ~seed)
      | "specweb" ->
          ( "specweb",
            specweb_trace ~directories:(max 1 (files / 400)) ~requests ~seed )
      | other ->
          Format.eprintf "unknown workload %S (zipf|specweb)@." other;
          exit 2)

(* Size spec: absolute bytes with k/m/g suffix, or N% of the trace
   footprint. *)
let parse_size footprint s =
  let s = String.trim (String.lowercase_ascii s) in
  let fail () =
    Format.eprintf "bad cache size %S (use BYTES, BYTES[kmg] or N%%)@." s;
    exit 2
  in
  if s = "" then fail ()
  else
    let last = s.[String.length s - 1] in
    let head = String.sub s 0 (String.length s - 1) in
    match last with
    | '%' -> (
        match float_of_string_opt head with
        | Some p when p > 0. ->
            max 1 (int_of_float (p /. 100. *. float_of_int footprint))
        | _ -> fail ())
    | 'k' | 'm' | 'g' -> (
        let mult =
          match last with 'k' -> 1024 | 'm' -> 1024 * 1024 | _ -> 1024 * 1024 * 1024
        in
        match int_of_string_opt head with
        | Some n when n > 0 -> n * mult
        | _ -> fail ())
    | _ -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> fail ())

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let cell_json c =
  Printf.sprintf
    {|{"policy":%s,"capacity":%d,"hits":%d,"misses":%d,"evictions":%d,"admitted":%d,"rejected":%d,"hit_rate":%.6f,"byte_hit_rate":%.6f}|}
    (Obs.Json.str (Flash_cache.Policy.name c.policy))
    c.capacity c.hits c.misses c.evictions c.admitted c.rejected c.hit_rate
    c.byte_hit_rate

let mrc_json policies grid =
  let per_policy p =
    let points =
      List.filter_map
        (fun c ->
          if c.policy = p then
            Some (Printf.sprintf "[%d,%.6f]" c.capacity (1. -. c.hit_rate))
          else None)
        grid
    in
    Printf.sprintf {|%s:[%s]|}
      (Obs.Json.str (Flash_cache.Policy.name p))
      (String.concat "," points)
  in
  "{" ^ String.concat "," (List.map per_policy policies) ^ "}"

let run workload trace_file files requests alpha seed policies_arg admission_arg
    sizes_arg json out =
  let kind, trace =
    build_trace ~workload ~trace_file ~files ~requests ~alpha ~seed
  in
  let policies =
    List.map
      (fun s ->
        match Flash_cache.Policy.of_string s with
        | Ok p -> p
        | Error msg ->
            Format.eprintf "%s@." msg;
            exit 2)
      (split_commas policies_arg)
  in
  let admission =
    match Flash_cache.Policy.admission_of_string admission_arg with
    | Ok a -> a
    | Error msg ->
        Format.eprintf "%s@." msg;
        exit 2
  in
  let footprint = Workload.Trace.footprint_bytes trace in
  let sizes = List.map (parse_size footprint) (split_commas sizes_arg) in
  if policies = [] || sizes = [] then begin
    Format.eprintf "need at least one policy and one cache size@.";
    exit 2
  end;
  let grid =
    List.concat_map
      (fun policy ->
        List.map (fun capacity -> replay trace ~policy ~admission ~capacity) sizes)
      policies
  in
  let output =
    if json then
      Printf.sprintf
        {|{"workload":{"kind":%s,"requests":%d,"distinct_files":%d,"footprint_bytes":%d,"admission":%s},"grid":[%s],"mrc":%s}|}
        (Obs.Json.str kind) (Workload.Trace.length trace)
        (Workload.Trace.distinct_files trace)
        footprint
        (Obs.Json.str (Flash_cache.Policy.admission_name admission))
        (String.concat "," (List.map cell_json grid))
        (mrc_json policies grid)
      ^ "\n"
    else begin
      let b = Buffer.create 1024 in
      Printf.bprintf b
        "workload %s: %d requests over %d files (%d byte footprint), %s admission\n"
        kind (Workload.Trace.length trace)
        (Workload.Trace.distinct_files trace)
        footprint
        (Flash_cache.Policy.admission_name admission);
      Printf.bprintf b "%-6s %12s %9s %9s %10s %10s\n" "policy" "capacity"
        "hit-rate" "byte-hit" "evictions" "rejected";
      List.iter
        (fun c ->
          Printf.bprintf b "%-6s %12d %8.2f%% %8.2f%% %10d %10d\n"
            (Flash_cache.Policy.name c.policy)
            c.capacity (100. *. c.hit_rate) (100. *. c.byte_hit_rate)
            c.evictions c.rejected)
        grid;
      Buffer.contents b
    end
  in
  match out with
  | None -> print_string output
  | Some path ->
      let oc = open_out path in
      output_string oc output;
      close_out oc;
      Format.printf "wrote %s@." path

let workload =
  Arg.(
    value & opt string "zipf"
    & info [ "workload"; "w" ] ~docv:"KIND"
        ~doc:"Synthetic workload: zipf (default) or specweb.")

let trace_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Replay a Common Log Format access log instead of a synthetic \
              workload.")

let files =
  Arg.(
    value & opt int 2000
    & info [ "files" ] ~docv:"N" ~doc:"Files in the synthetic fileset.")

let requests =
  Arg.(
    value & opt int 50_000
    & info [ "requests"; "n" ] ~docv:"N" ~doc:"Requests to replay.")

let alpha =
  Arg.(
    value & opt float 1.0
    & info [ "alpha" ] ~docv:"A" ~doc:"Zipf popularity exponent.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")

let policies =
  Arg.(
    value
    & opt string
        (String.concat ","
           (List.map Flash_cache.Policy.name Flash_cache.Policy.all))
    & info [ "policies" ] ~docv:"LIST"
        ~doc:
          (Printf.sprintf "Comma-separated policies to sweep (%s)."
             Flash_cache.Policy.valid_names))

let admission =
  Arg.(
    value & opt string "always"
    & info [ "admission" ] ~docv:"GATE"
        ~doc:
          (Printf.sprintf "Admission gate applied to every cell (%s)."
             Flash_cache.Policy.admission_valid_names))

let sizes =
  Arg.(
    value
    & opt string "5%,10%,25%,50%"
    & info [ "sizes" ] ~docv:"LIST"
        ~doc:
          "Comma-separated cache sizes: absolute bytes (suffix k/m/g) or \
           percentages of the trace footprint.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the report here instead of stdout.")

let cmd =
  let doc = "replay workload traces across cache policy and size grids" in
  Cmd.v
    (Cmd.info "flash-cachelab" ~doc)
    Term.(
      const run $ workload $ trace_file $ files $ requests $ alpha $ seed
      $ policies $ admission $ sizes $ json $ out)

let () = exit (Cmd.eval cmd)
