(* flash-cachelab: offline cache-policy evaluator.

   Replays a workload trace (synthetic Zipf over a generated fileset, a
   SPECweb96-like stream, or a Common Log Format access log) through the
   {!Flash_cache} subsystem across a policy x cache-size grid, reporting
   request hit rate, byte hit rate and eviction counts, plus a miss-ratio
   curve per policy.

     dune exec bin/flash_cachelab.exe -- --json
     dune exec bin/flash_cachelab.exe -- --workload specweb --sizes 10%,50%
     dune exec bin/flash_cachelab.exe -- --trace access.log --policies lru,gdsf
     dune exec bin/flash_cachelab.exe -- --warm-eval --coldstart 2000 *)

open Cmdliner

type cell = {
  policy : Flash_cache.Policy.kind;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  admitted : int;
  rejected : int;
  hit_rate : float;
  byte_hit_rate : float;
}

type kind_stat = {
  mutable k_requests : int;
  mutable k_hits : int;
  mutable k_wire : int;  (* response body bytes this kind puts on the wire *)
}

(* One grid cell: replay the stream through a fresh store.  Values are
   unit — only the keys, weights and policy reactions matter.

   With a request mix, each step takes the shape its kind implies, the
   way the live server's cache sees them: conditional revalidations
   still touch the origin entry (a cached 304 is served from it) but
   move no body bytes; ranges touch the origin entry and move only the
   requested window; gzip requests replay the *variant* key — the same
   store, a NUL-separated derived key and a compressed weight, exactly
   the live File_cache layout — so variants compete with origins for
   the shared capacity here too. *)
let replay ?mix ?(range_bytes = 1024) ?(gzip_ratio = 0.4) ~per_kind trace
    ~policy ~admission ~capacity =
  let store =
    Flash_cache.Store.create ~policy ~admission ~name:"cachelab" ~capacity ()
  in
  let byte_hits = ref 0 and byte_total = ref 0 in
  let n = Workload.Trace.length trace in
  for i = 0 to n - 1 do
    let path = Workload.Trace.request_path trace i in
    let size = Workload.Trace.request_size trace i in
    let kind =
      match mix with
      | None -> Workload.Reqmix.Plain
      | Some m -> Workload.Reqmix.kind m i
    in
    let key, weight, wire =
      match kind with
      | Workload.Reqmix.Plain -> (path, size, size)
      | Workload.Reqmix.Conditional -> (path, size, 0)
      | Workload.Reqmix.Range -> (path, size, min range_bytes size)
      | Workload.Reqmix.Gzip ->
          let gz = max 1 (int_of_float (gzip_ratio *. float_of_int size)) in
          (path ^ "\x00gzip", gz, gz)
    in
    byte_total := !byte_total + wire;
    let ks =
      match Hashtbl.find_opt per_kind kind with
      | Some ks -> ks
      | None ->
          let ks = { k_requests = 0; k_hits = 0; k_wire = 0 } in
          Hashtbl.replace per_kind kind ks;
          ks
    in
    ks.k_requests <- ks.k_requests + 1;
    ks.k_wire <- ks.k_wire + wire;
    match Flash_cache.Store.find store key with
    | Some () ->
        byte_hits := !byte_hits + wire;
        ks.k_hits <- ks.k_hits + 1
    | None -> ignore (Flash_cache.Store.add store key () ~weight:(max 1 weight))
  done;
  let s = Flash_cache.Store.stats store in
  {
    policy;
    capacity;
    hits = s.Flash_cache.Store.hits;
    misses = s.Flash_cache.Store.misses;
    evictions = s.Flash_cache.Store.evictions;
    admitted = s.Flash_cache.Store.admitted;
    rejected = s.Flash_cache.Store.rejected;
    hit_rate =
      (if n = 0 then 0. else float_of_int s.Flash_cache.Store.hits /. float_of_int n);
    byte_hit_rate =
      (if !byte_total = 0 then 0.
       else float_of_int !byte_hits /. float_of_int !byte_total);
  }

(* ------------------------------------------------------------------ *)
(* Predictive-warming evaluation                                       *)
(* ------------------------------------------------------------------ *)

(* Warming-vs-demand-fill on a cold start.  The trace plays the role of
   yesterday's access log: the miner folds it into a ranking, the ranked
   hot set is pre-populated and pinned into a fresh store, and the same
   trace replays as today's traffic.  The figure of merit is the hit
   rate over the first [coldstart] requests — the window where a
   demand-fill cache is still empty — warmed minus unwarmed.  After the
   cold window the pins are released (the live warmer re-ranks each
   mining period; offline, one release models the hand-back to normal
   replacement once real traffic has been observed). *)
type warm_cell = {
  w_policy : Flash_cache.Policy.kind;
  w_capacity : int;
  w_candidates : int;
  w_prefill_bytes : int;
  w_cold_requests : int;
  w_cold_unwarmed : float;
  w_cold_warmed : float;
  w_total_unwarmed : float;
  w_total_warmed : float;
}

(* Synthetic timestamps, one second per 100 requests — the same clock
   [Trace.save_clf] stamps into its output, so a saved trace mines to
   the identical ranking whether observed directly or re-parsed from
   CLF lines. *)
let synthetic_now i = float_of_int i /. 100.

(* Mine the evaluation's access history.  A CLF file is re-read line by
   line through {!Flash_warm.Miner.observe_line} — the exact parser the
   live server's startup mining uses — so the machine-minable log format
   is exercised end to end; synthetic traces are observed directly. *)
let mine_history ~trace_file ~trace =
  let miner = Flash_warm.Miner.create () in
  (match trace_file with
  | Some path ->
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let i = ref 0 in
          try
            while true do
              ignore
                (Flash_warm.Miner.observe_line miner ~now:(synthetic_now !i)
                   (input_line ic));
              incr i
            done
          with End_of_file -> ())
  | None ->
      let n = Workload.Trace.length trace in
      for i = 0 to n - 1 do
        Flash_warm.Miner.observe miner ~now:(synthetic_now i)
          ~bytes:(Workload.Trace.request_size trace i)
          (Workload.Trace.request_path trace i)
      done);
  miner

(* One warm-eval replay: optionally pre-populate + pin [candidates],
   then count hits inside and outside the cold window.  Returns
   (prefill_bytes, cold_hits, total_hits). *)
let replay_cold trace ~policy ~admission ~capacity ~coldstart ~candidates =
  let store =
    Flash_cache.Store.create ~policy ~admission ~name:"warmlab" ~capacity ()
  in
  let prefill = ref 0 in
  List.iter
    (fun c ->
      let w = max 1 c.Flash_warm.Miner.c_bytes in
      if Flash_cache.Store.add store c.Flash_warm.Miner.c_path () ~weight:w
      then begin
        ignore (Flash_cache.Store.pin store c.Flash_warm.Miner.c_path);
        prefill := !prefill + w
      end)
    candidates;
  let n = Workload.Trace.length trace in
  let cold_hits = ref 0 and total_hits = ref 0 in
  for i = 0 to n - 1 do
    if i = coldstart then
      List.iter
        (fun k -> ignore (Flash_cache.Store.unpin store k))
        (Flash_cache.Store.pinned_keys store);
    let path = Workload.Trace.request_path trace i in
    let size = Workload.Trace.request_size trace i in
    match Flash_cache.Store.find store path with
    | Some () ->
        incr total_hits;
        if i < coldstart then incr cold_hits
    | None -> ignore (Flash_cache.Store.add store path () ~weight:(max 1 size))
  done;
  (!prefill, !cold_hits, !total_hits)

let warm_eval ~trace_file ~trace ~policies ~admission ~sizes ~coldstart
    ~top_k ~budget_frac =
  let miner = mine_history ~trace_file ~trace in
  let n = Workload.Trace.length trace in
  let coldstart = max 1 (min coldstart n) in
  let now = synthetic_now n in
  let rate cold total = float_of_int cold /. float_of_int total in
  List.concat_map
    (fun policy ->
      List.map
        (fun capacity ->
          let budget_bytes =
            max 1 (int_of_float (budget_frac *. float_of_int capacity))
          in
          let candidates =
            Flash_warm.Miner.rank miner ~now ~top_k ~budget_bytes
          in
          let _, cold0, total0 =
            replay_cold trace ~policy ~admission ~capacity ~coldstart
              ~candidates:[]
          in
          let prefill, cold1, total1 =
            replay_cold trace ~policy ~admission ~capacity ~coldstart
              ~candidates
          in
          {
            w_policy = policy;
            w_capacity = capacity;
            w_candidates = List.length candidates;
            w_prefill_bytes = prefill;
            w_cold_requests = coldstart;
            w_cold_unwarmed = rate cold0 coldstart;
            w_cold_warmed = rate cold1 coldstart;
            w_total_unwarmed = rate total0 n;
            w_total_warmed = rate total1 n;
          })
        sizes)
    policies

(* ------------------------------------------------------------------ *)
(* Workload construction                                               *)
(* ------------------------------------------------------------------ *)

let zipf_trace ~files ~requests ~alpha ~seed =
  let fileset = Workload.Fileset.generate (Workload.Fileset.cs_like ~files ~seed) in
  Workload.Trace.generate fileset ~length:requests ~alpha ~seed

(* SPECweb sampling yields paths; fold them back to fileset indices to
   build a replayable trace. *)
let specweb_trace ~directories ~requests ~seed =
  let sw = Workload.Specweb.generate ~directories ~seed in
  let fileset = Workload.Specweb.fileset sw in
  let index = Hashtbl.create 4096 in
  Array.iteri (fun i p -> Hashtbl.replace index p i) fileset.Workload.Fileset.paths;
  let rng = Sim.Rng.create ~seed in
  let requests =
    Array.init requests (fun _ ->
        Hashtbl.find index (Workload.Specweb.sample sw rng))
  in
  { Workload.Trace.fileset; requests }

let build_trace ~workload ~trace_file ~files ~requests ~alpha ~seed =
  match trace_file with
  | Some path -> ("clf:" ^ path, Workload.Trace.load_clf ~path)
  | None -> (
      match workload with
      | "zipf" -> ("zipf", zipf_trace ~files ~requests ~alpha ~seed)
      | "specweb" ->
          ( "specweb",
            specweb_trace ~directories:(max 1 (files / 400)) ~requests ~seed )
      | other ->
          Format.eprintf "unknown workload %S (zipf|specweb)@." other;
          exit 2)

(* Size spec: absolute bytes with k/m/g suffix, or N% of the trace
   footprint. *)
let parse_size footprint s =
  let s = String.trim (String.lowercase_ascii s) in
  let fail () =
    Format.eprintf "bad cache size %S (use BYTES, BYTES[kmg] or N%%)@." s;
    exit 2
  in
  if s = "" then fail ()
  else
    let last = s.[String.length s - 1] in
    let head = String.sub s 0 (String.length s - 1) in
    match last with
    | '%' -> (
        match float_of_string_opt head with
        | Some p when p > 0. ->
            max 1 (int_of_float (p /. 100. *. float_of_int footprint))
        | _ -> fail ())
    | 'k' | 'm' | 'g' -> (
        let mult =
          match last with 'k' -> 1024 | 'm' -> 1024 * 1024 | _ -> 1024 * 1024 * 1024
        in
        match int_of_string_opt head with
        | Some n when n > 0 -> n * mult
        | _ -> fail ())
    | _ -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> fail ())

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let cell_json c =
  Printf.sprintf
    {|{"policy":%s,"capacity":%d,"hits":%d,"misses":%d,"evictions":%d,"admitted":%d,"rejected":%d,"hit_rate":%.6f,"byte_hit_rate":%.6f}|}
    (Obs.Json.str (Flash_cache.Policy.name c.policy))
    c.capacity c.hits c.misses c.evictions c.admitted c.rejected c.hit_rate
    c.byte_hit_rate

let mrc_json policies grid =
  let per_policy p =
    let points =
      List.filter_map
        (fun c ->
          if c.policy = p then
            Some (Printf.sprintf "[%d,%.6f]" c.capacity (1. -. c.hit_rate))
          else None)
        grid
    in
    Printf.sprintf {|%s:[%s]|}
      (Obs.Json.str (Flash_cache.Policy.name p))
      (String.concat "," points)
  in
  "{" ^ String.concat "," (List.map per_policy policies) ^ "}"

let warm_cell_json w =
  Printf.sprintf
    {|{"policy":%s,"capacity":%d,"candidates":%d,"prefill_bytes":%d,"cold_requests":%d,"cold_hit_rate_unwarmed":%.6f,"cold_hit_rate_warmed":%.6f,"cold_delta":%.6f,"hit_rate_unwarmed":%.6f,"hit_rate_warmed":%.6f}|}
    (Obs.Json.str (Flash_cache.Policy.name w.w_policy))
    w.w_capacity w.w_candidates w.w_prefill_bytes w.w_cold_requests
    w.w_cold_unwarmed w.w_cold_warmed
    (w.w_cold_warmed -. w.w_cold_unwarmed)
    w.w_total_unwarmed w.w_total_warmed

let run workload trace_file files requests alpha seed policies_arg admission_arg
    sizes_arg mix_conditional mix_range mix_gzip gzip_ratio mix_seed save_clf
    warm_eval_on coldstart warm_top_k warm_budget json out =
  let kind, trace =
    build_trace ~workload ~trace_file ~files ~requests ~alpha ~seed
  in
  (match save_clf with
  | None -> ()
  | Some path ->
      Workload.Trace.save_clf trace ~path;
      Format.eprintf "saved CLF trace to %s@." path);
  (* Decorrelated from the trace's seed by default: both generators draw
     one uniform per request, so sharing the seed would align the kind
     draw with the popularity draw (every conditional request would hit
     the most popular files).  --mix-seed overrides the derivation. *)
  let mix_seed =
    match mix_seed with Some s -> s | None -> seed lxor 0x5bd1e995
  in
  let mix =
    if mix_conditional = 0. && mix_range = 0. && mix_gzip = 0. then None
    else
      Some
        (Workload.Reqmix.generate
           ~length:(Workload.Trace.length trace)
           ~conditional:mix_conditional ~range:mix_range ~gzip:mix_gzip
           ~seed:mix_seed)
  in
  let policies =
    List.map
      (fun s ->
        match Flash_cache.Policy.of_string s with
        | Ok p -> p
        | Error msg ->
            Format.eprintf "%s@." msg;
            exit 2)
      (split_commas policies_arg)
  in
  let admission =
    match Flash_cache.Policy.admission_of_string admission_arg with
    | Ok a -> a
    | Error msg ->
        Format.eprintf "%s@." msg;
        exit 2
  in
  let footprint = Workload.Trace.footprint_bytes trace in
  let sizes = List.map (parse_size footprint) (split_commas sizes_arg) in
  if policies = [] || sizes = [] then begin
    Format.eprintf "need at least one policy and one cache size@.";
    exit 2
  end;
  let per_kind = Hashtbl.create 4 in
  let grid =
    List.concat_map
      (fun policy ->
        List.map
          (fun capacity ->
            replay ?mix ~gzip_ratio ~per_kind trace ~policy ~admission
              ~capacity)
          sizes)
      policies
  in
  let warm_cells =
    if warm_eval_on then
      Some
        (warm_eval ~trace_file ~trace ~policies ~admission ~sizes ~coldstart
           ~top_k:warm_top_k ~budget_frac:warm_budget)
    else None
  in
  let kind_rows =
    List.filter_map
      (fun k ->
        Option.map
          (fun ks -> (Workload.Reqmix.kind_name k, ks))
          (Hashtbl.find_opt per_kind k))
      Workload.Reqmix.all_kinds
  in
  let mix_json =
    match mix with
    | None -> "null"
    | Some _ ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (name, ks) ->
                 Printf.sprintf
                   {|%s:{"requests":%d,"hits":%d,"wire_bytes":%d}|}
                   (Obs.Json.str name) ks.k_requests ks.k_hits ks.k_wire)
               kind_rows)
        ^ "}"
  in
  let warming_json =
    match warm_cells with
    | None -> "null"
    | Some cells ->
        Printf.sprintf
          {|{"coldstart":%d,"top_k":%d,"budget_frac":%.4f,"cells":[%s]}|}
          (max 1 (min coldstart (Workload.Trace.length trace)))
          warm_top_k warm_budget
          (String.concat "," (List.map warm_cell_json cells))
  in
  let output =
    if json then
      Printf.sprintf
        {|{"workload":{"kind":%s,"requests":%d,"distinct_files":%d,"footprint_bytes":%d,"admission":%s,"seed":%d,"mix_seed":%d},"mix":%s,"grid":[%s],"mrc":%s,"warming":%s}|}
        (Obs.Json.str kind) (Workload.Trace.length trace)
        (Workload.Trace.distinct_files trace)
        footprint
        (Obs.Json.str (Flash_cache.Policy.admission_name admission))
        seed mix_seed mix_json
        (String.concat "," (List.map cell_json grid))
        (mrc_json policies grid)
        warming_json
      ^ "\n"
    else begin
      let b = Buffer.create 1024 in
      Printf.bprintf b
        "workload %s: %d requests over %d files (%d byte footprint), %s admission\n"
        kind (Workload.Trace.length trace)
        (Workload.Trace.distinct_files trace)
        footprint
        (Flash_cache.Policy.admission_name admission);
      Printf.bprintf b "%-6s %12s %9s %9s %10s %10s\n" "policy" "capacity"
        "hit-rate" "byte-hit" "evictions" "rejected";
      List.iter
        (fun c ->
          Printf.bprintf b "%-6s %12d %8.2f%% %8.2f%% %10d %10d\n"
            (Flash_cache.Policy.name c.policy)
            c.capacity (100. *. c.hit_rate) (100. *. c.byte_hit_rate)
            c.evictions c.rejected)
        grid;
      (match mix with
      | None -> ()
      | Some _ ->
          Printf.bprintf b
            "request mix (aggregated over all cells; mix seed %d; wire = \
             body bytes):\n"
            mix_seed;
          List.iter
            (fun (name, ks) ->
              Printf.bprintf b "  %-12s %9d requests %9d hits %14d wire bytes\n"
                name ks.k_requests ks.k_hits ks.k_wire)
            kind_rows);
      (match warm_cells with
      | None -> ()
      | Some cells ->
          Printf.bprintf b
            "cache warming (cold start = first %d requests, top %d \
             candidates, hot tier <= %.0f%% of capacity):\n"
            (max 1 (min coldstart (Workload.Trace.length trace)))
            warm_top_k (100. *. warm_budget);
          Printf.bprintf b "%-6s %12s %10s %11s %9s %11s\n" "policy" "capacity"
            "cold-cold" "cold-warmed" "delta" "candidates";
          List.iter
            (fun w ->
              Printf.bprintf b "%-6s %12d %9.2f%% %10.2f%% %+8.2f%% %11d\n"
                (Flash_cache.Policy.name w.w_policy)
                w.w_capacity
                (100. *. w.w_cold_unwarmed)
                (100. *. w.w_cold_warmed)
                (100. *. (w.w_cold_warmed -. w.w_cold_unwarmed))
                w.w_candidates)
            cells);
      Buffer.contents b
    end
  in
  match out with
  | None -> print_string output
  | Some path ->
      let oc = open_out path in
      output_string oc output;
      close_out oc;
      Format.printf "wrote %s@." path

let workload =
  Arg.(
    value & opt string "zipf"
    & info [ "workload"; "w" ] ~docv:"KIND"
        ~doc:"Synthetic workload: zipf (default) or specweb.")

let trace_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Replay a Common Log Format access log instead of a synthetic \
              workload.")

let files =
  Arg.(
    value & opt int 2000
    & info [ "files" ] ~docv:"N" ~doc:"Files in the synthetic fileset.")

let requests =
  Arg.(
    value & opt int 50_000
    & info [ "requests"; "n" ] ~docv:"N" ~doc:"Requests to replay.")

let alpha =
  Arg.(
    value & opt float 1.0
    & info [ "alpha" ] ~docv:"A" ~doc:"Zipf popularity exponent.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"RNG seed.")

let policies =
  Arg.(
    value
    & opt string
        (String.concat ","
           (List.map Flash_cache.Policy.name Flash_cache.Policy.all))
    & info [ "policies" ] ~docv:"LIST"
        ~doc:
          (Printf.sprintf "Comma-separated policies to sweep (%s)."
             Flash_cache.Policy.valid_names))

let admission =
  Arg.(
    value & opt string "always"
    & info [ "admission" ] ~docv:"GATE"
        ~doc:
          (Printf.sprintf "Admission gate applied to every cell (%s)."
             Flash_cache.Policy.admission_valid_names))

let sizes =
  Arg.(
    value
    & opt string "5%,10%,25%,50%"
    & info [ "sizes" ] ~docv:"LIST"
        ~doc:
          "Comma-separated cache sizes: absolute bytes (suffix k/m/g) or \
           percentages of the trace footprint.")

let mix_conditional =
  Arg.(
    value & opt float 0.
    & info [ "mix-conditional" ] ~docv:"F"
        ~doc:
          "Fraction of requests replayed as conditional revalidations \
           (304: touch the entry, move no body bytes).")

let mix_range =
  Arg.(
    value & opt float 0.
    & info [ "mix-range" ] ~docv:"F"
        ~doc:
          "Fraction of requests replayed as single byte ranges (206: \
           touch the entry, move only the first KiB).")

let mix_gzip =
  Arg.(
    value & opt float 0.
    & info [ "mix-gzip" ] ~docv:"F"
        ~doc:
          "Fraction of requests replayed against the gzip variant key \
           (origin path + NUL + encoding, compressed weight) — variants \
           compete with origins for the same capacity, as in the live \
           file cache.")

let gzip_ratio =
  Arg.(
    value & opt float 0.4
    & info [ "gzip-ratio" ] ~docv:"R"
        ~doc:"Modelled compressed-size ratio for gzip-variant requests.")

let mix_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mix-seed" ] ~docv:"S"
        ~doc:
          "Seed for the request-kind draw.  Defaults to the trace seed \
           XOR 0x5bd1e995 (decorrelated so kind and popularity draws \
           never align); the derived value is recorded in the JSON \
           report either way.")

let save_clf_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-clf" ] ~docv:"FILE"
        ~doc:
          "Write the replayed trace as a Common Log Format access log \
           before evaluation — feed it back via $(b,--trace) for a \
           parser round-trip.")

let warm_eval_arg =
  Arg.(
    value & flag
    & info [ "warm-eval" ]
        ~doc:
          "Evaluate predictive cache warming: mine the trace as access \
           history, pre-populate and pin the ranked hot set in a fresh \
           store, and report the cold-start hit-rate delta against \
           demand fill for every grid cell.")

let coldstart_arg =
  Arg.(
    value & opt int 2000
    & info [ "coldstart" ] ~docv:"N"
        ~doc:
          "Cold-start window for $(b,--warm-eval): the hit rate over \
           the first N replayed requests is the figure of merit.")

let warm_top_k_arg =
  Arg.(
    value & opt int 64
    & info [ "warm-top-k" ] ~docv:"K"
        ~doc:"Candidates the warming ranking may pin ($(b,--warm-eval)).")

let warm_budget_arg =
  Arg.(
    value & opt float 0.25
    & info [ "warm-budget" ] ~docv:"F"
        ~doc:
          "Fraction of each cell's capacity the pinned hot tier may \
           occupy ($(b,--warm-eval)).")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the report here instead of stdout.")

let cmd =
  let doc = "replay workload traces across cache policy and size grids" in
  Cmd.v
    (Cmd.info "flash-cachelab" ~doc)
    Term.(
      const run $ workload $ trace_file $ files $ requests $ alpha $ seed
      $ policies $ admission $ sizes $ mix_conditional $ mix_range $ mix_gzip
      $ gzip_ratio $ mix_seed_arg $ save_clf_arg $ warm_eval_arg
      $ coldstart_arg $ warm_top_k_arg $ warm_budget_arg $ json $ out)

let () = exit (Cmd.eval cmd)
