(* flash-sim: run one simulated experiment and print its result.

     dune exec bin/flash_sim.exe -- --server flash --os freebsd \
       --dataset-mb 90 --clients 64 --duration 10 *)

open Cmdliner

let server_of_name = function
  | "flash" | "amped" -> Ok Flash.Config.flash
  | "sped" -> Ok Flash.Config.flash_sped
  | "mp" -> Ok Flash.Config.flash_mp
  | "mt" -> Ok Flash.Config.flash_mt
  | "apache" -> Ok Flash.Config.apache
  | "zeus" -> Ok (Flash.Config.zeus ~processes:2)
  | other -> Error other

let profile_of_name = function
  | "freebsd" -> Ok Simos.Os_profile.freebsd
  | "solaris" -> Ok Simos.Os_profile.solaris
  | other -> Error other

let run server os dataset_mb clients duration persistent single_file_kb log
    seed recorder_json =
  let server =
    match server_of_name (String.lowercase_ascii server) with
    | Ok s -> s
    | Error o ->
        Format.eprintf
          "unknown server %S (flash|sped|mp|mt|apache|zeus)@." o;
        exit 2
  in
  let profile =
    match profile_of_name (String.lowercase_ascii os) with
    | Ok p -> p
    | Error o ->
        Format.eprintf "unknown os %S (freebsd|solaris)@." o;
        exit 2
  in
  let fileset, next =
    match log with
    | Some path ->
        (* Replay a real (or exported) access log, as the paper does. *)
        let trace = Workload.Trace.load_clf ~path in
        ( trace.Workload.Trace.fileset,
          fun i -> Workload.Trace.request_path trace i )
    | None -> (
    match single_file_kb with
    | Some kb ->
        let fileset =
          {
            Workload.Fileset.spec = Workload.Fileset.ece_like ~files:1 ~seed;
            paths = [| "/www/data/set0/file.html" |];
            sizes = [| kb * 1024 |];
          }
        in
        (fileset, fun _ -> "/www/data/set0/file.html")
    | None ->
        let base =
          Workload.Fileset.generate
            (Workload.Fileset.ece_like ~files:9000 ~seed:31)
        in
        let fileset =
          Workload.Fileset.truncate base
            ~dataset_bytes:(dataset_mb * 1024 * 1024)
        in
        let trace =
          Workload.Trace.generate fileset ~length:60_000 ~alpha:0.9 ~seed
        in
        (fileset, fun i -> Workload.Trace.request_path trace i))
  in
  Format.printf
    "Workload: %d files, %.1f MB; %d %s clients; %s on %s; %.0fs measured@."
    (Workload.Fileset.file_count fileset)
    (float_of_int (Workload.Fileset.total_bytes fileset) /. 1048576.)
    clients
    (if persistent then "persistent" else "per-request")
    server.Flash.Config.label profile.Simos.Os_profile.name duration;
  let r =
    Workload.Driver.run ~seed ~clients ~persistent ~warmup:(duration /. 2.)
      ~duration ~profile ~server ~fileset ~next ()
  in
  Format.printf "%a@." Workload.Driver.pp_result r;
  Format.printf
    "completed=%d errors=%d disk_reads=%d cache_capacity=%.1fMB@."
    r.Workload.Driver.completed r.Workload.Driver.errors
    r.Workload.Driver.disk_reads
    (float_of_int r.Workload.Driver.cache_capacity_bytes /. 1048576.);
  let ts = r.Workload.Driver.timeseries in
  (match ts with
  | [] -> ()
  | _ ->
      let peak =
        List.fold_left (fun m w -> Float.max m (Obs.Recorder.rps w)) 0. ts
      in
      Format.printf "recorder:   %d windows, peak %.1f req/s@."
        (List.length ts) peak);
  match recorder_json with
  | None -> ()
  | Some file ->
      let oc = open_out_bin file in
      output_string oc (Obs.Recorder.rollups_json ts);
      output_char oc '\n';
      close_out oc;
      Format.printf "recorder:   wrote %s@." file

let server =
  Arg.(
    value & opt string "flash"
    & info [ "server"; "s" ] ~docv:"NAME"
        ~doc:"Server model: flash, sped, mp, mt, apache, zeus.")

let os =
  Arg.(
    value & opt string "freebsd"
    & info [ "os" ] ~docv:"OS" ~doc:"Cost profile: freebsd or solaris.")

let dataset_mb =
  Arg.(
    value & opt int 90
    & info [ "dataset-mb" ] ~docv:"MB" ~doc:"Trace dataset size.")

let clients =
  Arg.(value & opt int 64 & info [ "clients"; "c" ] ~docv:"N" ~doc:"Concurrent clients.")

let duration =
  Arg.(
    value & opt float 10.
    & info [ "duration"; "t" ] ~docv:"SEC" ~doc:"Measured simulated seconds.")

let persistent =
  Arg.(value & flag & info [ "persistent" ] ~doc:"HTTP/1.1 persistent connections.")

let single_file_kb =
  Arg.(
    value
    & opt (some int) None
    & info [ "single-file-kb" ] ~docv:"KB"
        ~doc:"Replace the trace with the single-file test at this size.")

let log =
  Arg.(
    value
    & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:"Replay a Common Log Format access log instead of a synthetic trace.")

let seed = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")

let recorder_json =
  Arg.(
    value
    & opt (some string) None
    & info [ "recorder-json" ] ~docv:"FILE"
        ~doc:
          "Write the flight-recorder time series (per-window rollups on \
           the virtual clock) as JSON here.")

let cmd =
  let doc = "run one simulated Flash experiment" in
  Cmd.v (Cmd.info "flash-sim" ~doc)
    Term.(
      const run $ server $ os $ dataset_mb $ clients $ duration $ persistent
      $ single_file_kb $ log $ seed $ recorder_json)

let () = exit (Cmd.eval cmd)
