(* flash-promlint: strict OpenMetrics/Prometheus text-format validator.

   Reads an exposition from a file (or stdin with "-"), runs the same
   strict parser the test suite uses — unique series, sorted labels,
   TYPE-before-samples, monotone cumulative histogram buckets — and
   exits non-zero with a diagnostic on the first violation.  CI pipes a
   live /metrics scrape through this.

     curl -s http://127.0.0.1:8080/metrics | flash-promlint -
     flash-promlint scrape.prom --require flash_http_requests_total *)

open Cmdliner

let read_all ic =
  let b = Buffer.create 65536 in
  (try
     while true do
       Buffer.add_channel b ic 65536
     done
   with End_of_file -> ());
  Buffer.contents b

let lint file required quiet =
  let text =
    if file = "-" then read_all stdin
    else begin
      let ic = open_in_bin file in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_all ic)
    end
  in
  match Obs.Exposition.validate text with
  | Error msg ->
      Format.eprintf "flash-promlint: %s@." msg;
      exit 1
  | Ok families ->
      let have name =
        List.exists (fun f -> f.Obs.Exposition.f_name = name) families
      in
      let missing = List.filter (fun n -> not (have n)) required in
      if missing <> [] then begin
        List.iter
          (fun n -> Format.eprintf "flash-promlint: missing metric %s@." n)
          missing;
        exit 1
      end;
      if not quiet then begin
        let series =
          List.fold_left
            (fun acc f -> acc + List.length f.Obs.Exposition.f_series)
            0 families
        in
        Format.printf "OK: %d metric families, %d series@."
          (List.length families) series
      end

let file =
  Arg.(
    value & pos 0 string "-"
    & info [] ~docv:"FILE" ~doc:"Exposition to validate (default stdin).")

let required =
  Arg.(
    value
    & opt_all string []
    & info [ "require" ] ~docv:"METRIC"
        ~doc:"Fail unless this metric family is present (repeatable).")

let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No output on success.")

let cmd =
  let doc = "validate Prometheus text exposition (strict)" in
  Cmd.v (Cmd.info "flash-promlint" ~doc) Term.(const lint $ file $ required $ quiet)

let () = exit (Cmd.eval cmd)
