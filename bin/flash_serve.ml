(* flash-serve: run the live Flash web server.

     dune exec bin/flash_serve.exe -- --docroot ./site --port 8080
     dune exec bin/flash_serve.exe -- --docroot ./site --mode sped
     dune exec bin/flash_serve.exe -- --docroot ./site --mode mt:8 *)

open Cmdliner

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info))

(* "p99:50", "99:50" or plain "50" (p99 assumed): quantile and target
   milliseconds for the latency SLO. *)
let parse_slo s =
  let s = String.trim s in
  match String.index_opt s ':' with
  | Some i ->
      let q = String.sub s 0 i in
      let q = if String.length q > 0 && (q.[0] = 'p' || q.[0] = 'P') then String.sub q 1 (String.length q - 1) else q in
      let t = String.sub s (i + 1) (String.length s - i - 1) in
      (match (float_of_string_opt q, float_of_string_opt t) with
      | Some q, Some t when q > 0. && q <= 100. && t > 0. -> Ok (q, t)
      | _ -> Error (`Msg (Printf.sprintf "invalid SLO %S (want P:MS, e.g. p99:50)" s)))
  | None -> (
      match float_of_string_opt s with
      | Some t when t > 0. -> Ok (99., t)
      | _ -> Error (`Msg (Printf.sprintf "invalid SLO %S (want P:MS or MS)" s)))

let serve docroot port mode domains event_backend helpers cache_mb cache_policy
    cache_admission cache_budget_mb no_cgi no_align no_writev no_gzip
    gzip_lazy access_log access_log_timing access_log_paths status_path
    no_status stall_ms no_trace trace_capacity trace_path slow_request_ms
    slow_request_log metrics_path no_metrics latency_slo recorder_dump
    recorder_interval guard warm_opts verbose =
  setup_logs verbose;
  let suffix_int s prefix default =
    match
      int_of_string_opt
        (String.sub s (String.length prefix)
           (String.length s - String.length prefix))
    with
    | Some n when n > 0 -> n
    | _ -> default
  in
  let has_prefix s prefix =
    String.length s > String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  let mode =
    match mode with
    | "amped" -> Flash_live.Server.Amped
    | "sped" -> Flash_live.Server.Sped
    | s when has_prefix s "mp:" -> Flash_live.Server.Mp (suffix_int s "mp:" 4)
    | s when has_prefix s "mt:" -> Flash_live.Server.Mt (suffix_int s "mt:" 8)
    | s when has_prefix s "sharded:" ->
        Flash_live.Server.Sharded (suffix_int s "sharded:" 2)
    | "mp" -> Flash_live.Server.Mp 4
    | "mt" -> Flash_live.Server.Mt 8
    | "sharded" ->
        Flash_live.Server.Sharded (max 1 (Domain.recommended_domain_count ()))
    | other ->
        Format.eprintf
          "unknown mode %S (amped|sped|mp[:N]|mt[:N]|sharded[:N])@." other;
        exit 2
  in
  (* --domains N is shorthand for --mode sharded:N (N > 1). *)
  let mode =
    match (domains, mode) with
    | None, m -> m
    | Some n, _ when n <= 1 -> mode
    | Some n, (Flash_live.Server.Amped | Flash_live.Server.Sharded _) ->
        Flash_live.Server.Sharded n
    | Some _, m ->
        Format.eprintf "--domains only applies to amped/sharded modes@.";
        ignore m;
        exit 2
  in
  if not (Sys.file_exists docroot && Sys.is_directory docroot) then begin
    Format.eprintf "docroot %S is not a directory@." docroot;
    exit 2
  end;
  let warm_on, warm_interval, warm_budget, warm_top_k, warm_log = warm_opts in
  (* --warm-log names a log to mine at startup: that is a request to
     warm, so it implies --warm. *)
  let warm_on = warm_on || warm_log <> None in
  let config =
    {
      (Flash_live.Server.default_config ~docroot) with
      Flash_live.Server.port;
      mode;
      helpers;
      file_cache_bytes = cache_mb * 1024 * 1024;
      cache_policy;
      cache_admission;
      cache_budget_bytes = Option.map (fun mb -> mb * 1024 * 1024) cache_budget_mb;
      enable_cgi = not no_cgi;
      align_headers = not no_align;
      use_writev = (not no_writev) && Iovec.have_writev;
      access_log;
      access_log_timing;
      access_log_paths;
      status_path = (if no_status then None else Some status_path);
      stall_threshold = stall_ms /. 1000.;
      trace = not no_trace;
      trace_capacity;
      trace_path = Some trace_path;
      slow_request_ms;
      slow_request_log;
      event_backend;
      gzip_precompressed = not no_gzip;
      gzip_lazy = gzip_lazy && not no_gzip;
      metrics_path = (if no_metrics then None else Some metrics_path);
      latency_slo;
      recorder_interval;
      guard;
      warm = warm_on;
      warm_interval;
      warm_budget;
      warm_top_k;
      warm_log;
    }
  in
  if Flash_guard.Guard.enabled guard && guard.Flash_guard.Guard.slo_shed
     && latency_slo = None
  then begin
    Format.eprintf "--slo-shed needs --latency-slo-ms to sense pressure@.";
    exit 2
  end;
  let server = Flash_live.Server.start config in
  Format.printf "Flash serving %s on http://127.0.0.1:%d/ (%s)@." docroot
    (Flash_live.Server.port server)
    (match mode with
    | Flash_live.Server.Amped -> "AMPED"
    | Flash_live.Server.Sped -> "SPED"
    | Flash_live.Server.Mp n -> Printf.sprintf "MP x%d" n
    | Flash_live.Server.Mt n -> Printf.sprintf "MT x%d" n
    | Flash_live.Server.Sharded n -> Printf.sprintf "SHARDED x%d" n);
  Format.printf "send path: %s@."
    (if config.Flash_live.Server.use_writev then "writev (gather)"
     else "write (copying fallback)");
  Format.printf "event backend: %s@." (Evio.name event_backend);
  (match Flash_live.Server.sharding_info server with
  | Some (n, strategy) ->
      Format.printf "domains: %d (%s accepts, %s backend per shard)@." n
        strategy (Evio.name event_backend)
  | None -> ());
  Format.printf "file cache: %d MB, %s replacement, %s admission%s@." cache_mb
    (Flash_cache.Policy.name cache_policy)
    (Flash_cache.Policy.admission_name cache_admission)
    (match cache_budget_mb with
    | Some mb -> Printf.sprintf ", %d MB shared budget" mb
    | None -> "");
  (match config.Flash_live.Server.status_path with
  | Some p ->
      Format.printf
        "status endpoint: %s (JSON with ?json, flight recorder with \
         ?window=N)@."
        p
  | None -> ());
  (match config.Flash_live.Server.metrics_path with
  | Some p -> Format.printf "metrics endpoint: %s (Prometheus text)@." p
  | None -> ());
  (match latency_slo with
  | Some (q, t) -> Format.printf "latency SLO: p%g <= %g ms@." q t
  | None -> ());
  (if config.Flash_live.Server.trace then
     match config.Flash_live.Server.trace_path with
     | Some p ->
         Format.printf "trace endpoint:  %s (Chrome trace-event JSON)@." p
     | None -> ());
  (match slow_request_ms with
  | Some ms ->
      Format.printf "slow requests over %.1f ms logged to %s@." ms
        (Option.value slow_request_log ~default:"stderr")
  | None -> ());
  (if warm_on then
     Format.printf
       "warming: every %gs, hot tier <= %d%% of cache, top %d candidates%s@."
       warm_interval
       (int_of_float (100. *. warm_budget))
       warm_top_k
       (match warm_log with
       | Some l -> Printf.sprintf ", mining %s at startup" l
       | None -> ""));
  (if Flash_guard.Guard.enabled guard then begin
     let g = guard in
     let parts =
       List.filter_map Fun.id
         [
           Option.map
             (Printf.sprintf "%d conns/ip")
             g.Flash_guard.Guard.max_conns_per_ip;
           Option.map
             (fun r ->
               Printf.sprintf "%g req/s/ip over %gs" r
                 g.Flash_guard.Guard.rps_window)
             g.Flash_guard.Guard.max_rps_per_ip;
           (if g.Flash_guard.Guard.header_deadline > 0. then
              Some
                (Printf.sprintf "%gs header deadline"
                   g.Flash_guard.Guard.header_deadline)
            else None);
           (if g.Flash_guard.Guard.min_byte_rate > 0. then
              Some
                (Printf.sprintf "%g B/s transfer floor"
                   g.Flash_guard.Guard.min_byte_rate)
            else None);
           Option.map
             (Printf.sprintf "%d queued helper jobs")
             g.Flash_guard.Guard.max_helper_queue;
           Option.map
             (Printf.sprintf "%d CGI children")
             g.Flash_guard.Guard.max_cgi_inflight;
           (if g.Flash_guard.Guard.slo_shed then Some "SLO-burn shedder"
            else None);
         ]
     in
     Format.printf "guard: %s; Retry-After %ds@."
       (String.concat ", " parts)
       g.Flash_guard.Guard.retry_after
   end);
  let stop _ =
    let s = Flash_live.Server.stats server in
    Format.printf
      "@.shutting down: %d requests, %d connections, %d errors, cache %d/%d \
       hit/miss (%d evicted), %d helper jobs@."
      s.Flash_live.Server.requests s.Flash_live.Server.connections
      s.Flash_live.Server.errors s.Flash_live.Server.cache_hits
      s.Flash_live.Server.cache_misses s.Flash_live.Server.cache_evictions
      s.Flash_live.Server.helper_jobs;
    let latency = Flash_live.Server.latency server in
    if Obs.Histogram.count latency > 0 then
      Format.printf
        "latency: p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max %.2f ms; %d loop \
         stalls (max %.1f ms)@."
        (1000. *. Obs.Histogram.percentile latency 50.)
        (1000. *. Obs.Histogram.percentile latency 90.)
        (1000. *. Obs.Histogram.percentile latency 99.)
        (1000. *. Obs.Histogram.max latency)
        s.Flash_live.Server.loop_stalls
        (1000. *. s.Flash_live.Server.loop_max_stall);
    Flash_live.Server.stop server;
    exit 0
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  (* SIGUSR1: dump the flight-recorder ring as JSON without stopping. *)
  let dump _ =
    let json = Flash_live.Server.recorder_dump server in
    match recorder_dump with
    | Some path ->
        let oc = open_out path in
        output_string oc (json ^ "\n");
        close_out oc;
        Format.printf "flight recorder dumped to %s@." path
    | None -> Format.printf "%s@." json
  in
  (try Sys.set_signal Sys.sigusr1 (Sys.Signal_handle dump)
   with Invalid_argument _ -> ());
  Flash_live.Server.run server

let docroot =
  Arg.(
    required
    & opt (some string) None
    & info [ "docroot"; "d" ] ~docv:"DIR" ~doc:"Document root directory.")

let port =
  Arg.(value & opt int 0 & info [ "port"; "p" ] ~docv:"PORT" ~doc:"Listen port (0 = ephemeral).")

let mode =
  Arg.(
    value & opt string "amped"
    & info [ "mode"; "m" ] ~docv:"MODE"
        ~doc:
          "Concurrency architecture: amped (default), sped, mp[:N], \
           mt[:N] or sharded[:N] (N AMPED shards on OCaml domains).")

let domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Shorthand for --mode sharded:N — run N independent AMPED \
           shards on OCaml domains, accepts balanced by SO_REUSEPORT \
           (hand-off ring where unsupported).")

let backend_conv =
  let parse s =
    match Evio.of_string s with
    | Ok kind -> Ok kind
    | Error msg -> Error (`Msg msg)
  in
  let print ppf kind = Format.pp_print_string ppf (Evio.name kind) in
  Arg.conv (parse, print)

let event_backend =
  Arg.(
    value
    & opt backend_conv Evio.Select
    & info [ "event-backend" ] ~docv:"BACKEND"
        ~doc:
          (Printf.sprintf
             "Event-readiness mechanism: %s.  select is the paper-faithful \
              default (FD_SETSIZE-capped, O(watched) per wait); poll lifts \
              the descriptor cap; epoll (Linux) keeps the interest set in \
              the kernel so a wait costs O(ready), not O(watched) — the \
              many-idle-connection win.  auto picks the best available."
             Evio.valid_names))

let helpers =
  Arg.(value & opt int 4 & info [ "helpers" ] ~docv:"N" ~doc:"AMPED helper threads.")

let cache_mb =
  Arg.(value & opt int 32 & info [ "cache-mb" ] ~docv:"MB" ~doc:"File cache size.")

(* A real Arg.conv so --help documents the valid names and a bad value
   fails argument parsing with the list (exit 124 from Cmdliner). *)
let policy_conv =
  let parse s =
    match Flash_cache.Policy.of_string s with
    | Ok kind -> Ok kind
    | Error msg -> Error (`Msg msg)
  in
  let print ppf kind =
    Format.pp_print_string ppf (Flash_cache.Policy.name kind)
  in
  Arg.conv (parse, print)

let cache_policy =
  Arg.(
    value
    & opt policy_conv Flash_cache.Policy.Lru
    & info [ "cache-policy" ] ~docv:"POLICY"
        ~doc:
          (Printf.sprintf
             "File-cache replacement policy: %s.  lru is the classic \
              default; slru segments out scan traffic; lfu favours \
              all-time-popular files (exponentially decayed counts); gdsf \
              is size-aware and maximises byte hit rate on heavy-tailed \
              file sets."
             Flash_cache.Policy.valid_names))

let admission_conv =
  let parse s =
    match Flash_cache.Policy.admission_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  let print ppf a =
    Format.pp_print_string ppf (Flash_cache.Policy.admission_name a)
  in
  Arg.conv (parse, print)

let cache_admission =
  Arg.(
    value
    & opt admission_conv Flash_cache.Policy.Admit_always
    & info [ "cache-admission" ] ~docv:"GATE"
        ~doc:
          (Printf.sprintf
             "File-cache admission gate: %s.  size:BYTES only caches \
              entries at least BYTES large (tiny responses are cheap to \
              rebuild); freq[:P] admits keys seen missing before always, \
              first-timers with probability P (default 0.1)."
             Flash_cache.Policy.admission_valid_names))

let cache_budget_mb =
  Arg.(
    value
    & opt (some int) None
    & info [ "cache-budget" ] ~docv:"MB"
        ~doc:
          "Overlay a shared byte budget on the file cache: when resident \
           bytes exceed it, the cache sheds entries even below its own \
           --cache-mb capacity.")

let no_cgi = Arg.(value & flag & info [ "no-cgi" ] ~doc:"Disable /cgi-bin/.")

let no_align =
  Arg.(value & flag & info [ "no-align" ] ~doc:"Disable 32-byte header alignment.")

let no_writev =
  Arg.(
    value & flag
    & info [ "no-writev" ]
        ~doc:
          "Force the copying write fallback instead of writev gather \
           writes (for A/B benchmarking the zero-copy send path).")

let no_gzip =
  Arg.(
    value & flag
    & info [ "no-gzip" ]
        ~doc:
          "Disable gzip content negotiation entirely: no .gz sibling \
           lookup, no lazy variants, no Vary: Accept-Encoding header.")

let gzip_lazy =
  Arg.(
    value & flag
    & info [ "gzip-lazy" ]
        ~doc:
          "When no fresh .gz sibling exists, build a stored-block gzip \
           variant of a cached file on demand and cache it beside its \
           origin under the same budget.")

let access_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "access-log" ] ~docv:"FILE" ~doc:"Write a Common Log Format access log.")

let access_log_timing =
  Arg.(
    value & flag
    & info [ "access-log-timing" ]
        ~doc:
          "Append each request's service time in microseconds after the \
           Common Log Format fields.")

let access_log_paths =
  Arg.(
    value & flag
    & info [ "access-log-paths" ]
        ~doc:
          "Append the resolved filesystem path after the Common Log \
           Format status/bytes fields — stable machine-minable fields \
           (like Apache's %>s %O %f) that --warm-log mines directly.")

let status_path =
  Arg.(
    value
    & opt string "/server-status"
    & info [ "status-path" ] ~docv:"PATH"
        ~doc:"Path of the built-in status endpoint (text; ?json for JSON).")

let no_trace =
  Arg.(
    value & flag
    & info [ "no-trace" ] ~doc:"Disable request-lifecycle tracing entirely.")

let trace_capacity =
  Arg.(
    value & opt int 256
    & info [ "trace-capacity" ] ~docv:"N"
        ~doc:"Completed traces kept in the ring buffer.")

let trace_path =
  Arg.(
    value
    & opt string "/server-trace"
    & info [ "trace-path" ] ~docv:"PATH"
        ~doc:
          "Path of the Chrome trace-event endpoint (open the JSON in \
           Perfetto).")

let slow_request_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-request-ms" ] ~docv:"MS"
        ~doc:
          "Log the full span breakdown of requests slower than this many \
           milliseconds.")

let slow_request_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "slow-request-log" ] ~docv:"FILE"
        ~doc:"Append slow-request breakdowns here (default stderr).")

let no_status =
  Arg.(value & flag & info [ "no-status" ] ~doc:"Disable the status endpoint.")

let stall_ms =
  Arg.(
    value & opt float 50.
    & info [ "stall-threshold" ] ~docv:"MS"
        ~doc:"Event-loop iterations processing longer than this count as stalls.")

let metrics_path =
  Arg.(
    value
    & opt string "/metrics"
    & info [ "metrics-path" ] ~docv:"PATH"
        ~doc:
          "Path of the Prometheus text exposition endpoint (one scrape = \
           one walk over the unified metrics registry).")

let no_metrics =
  Arg.(
    value & flag & info [ "no-metrics" ] ~doc:"Disable the metrics endpoint.")

let slo_conv = Arg.conv (parse_slo, fun ppf (q, t) -> Format.fprintf ppf "p%g:%g" q t)

let latency_slo =
  Arg.(
    value
    & opt (some slo_conv) None
    & info [ "latency-slo-ms" ] ~docv:"P:MS"
        ~doc:
          "Evaluate a latency SLO over the flight recorder's one-second \
           windows, e.g. p99:50 (p99 at or under 50 ms; plain MS assumes \
           p99).  Error-budget burn and the healthy/degraded/breached \
           state appear on /server-status and /metrics.")

let recorder_dump =
  Arg.(
    value
    & opt (some string) None
    & info [ "recorder-dump" ] ~docv:"FILE"
        ~doc:
          "On SIGUSR1, write the flight-recorder ring (per-second \
           rollups) as JSON here instead of stdout.")

let recorder_interval =
  Arg.(
    value & opt float 1.0
    & info [ "recorder-interval" ] ~docv:"SECONDS"
        ~doc:"Flight-recorder window length (default 1 s).")

(* ---- Guard (admission control and load shedding) flags ------------- *)

let max_conns_per_ip =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-conns-per-ip" ] ~docv:"N"
        ~doc:
          "Refuse (429) connections from a peer address already holding \
           N open connections — connection-flood defense.")

let max_rps_per_ip =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-rps-per-ip" ] ~docv:"RPS"
        ~doc:
          "Refuse (429, closing) requests from a peer exceeding this \
           rate over a sliding window.")

let rps_window =
  Arg.(
    value
    & opt float Flash_guard.Guard.default_config.Flash_guard.Guard.rps_window
    & info [ "rps-window" ] ~docv:"SECONDS"
        ~doc:"Sliding-window length for --max-rps-per-ip.")

let header_deadline =
  Arg.(
    value & opt float 0.
    & info [ "header-deadline" ] ~docv:"SECONDS"
        ~doc:
          "Answer 408 and close when a request head is not complete \
           this long after its first byte — slowloris defense (0 \
           disables).")

let min_byte_rate =
  Arg.(
    value & opt float 0.
    & info [ "min-byte-rate" ] ~docv:"BYTES/S"
        ~doc:
          "Close connections moving response bytes slower than this, \
           checked every --transfer-interval — slow-read defense (0 \
           disables).")

let transfer_interval =
  Arg.(
    value
    & opt float
        Flash_guard.Guard.default_config.Flash_guard.Guard.transfer_interval
    & info [ "transfer-interval" ] ~docv:"SECONDS"
        ~doc:"How often --min-byte-rate progress is checked.")

let max_helper_queue =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-helper-queue" ] ~docv:"N"
        ~doc:
          "Bound the AMPED helper queue: jobs beyond N waiting answer \
           503 with Retry-After instead of queueing without bound.")

let max_cgi =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cgi" ] ~docv:"N"
        ~doc:
          "Bound concurrent CGI children: requests beyond N in flight \
           answer 503 with Retry-After instead of forking.")

let slo_shed =
  Arg.(
    value & flag
    & info [ "slo-shed" ]
        ~doc:
          "Shed load when the --latency-slo-ms SLO burns: first reap \
           idle keep-alives, then refuse new connections (503), then \
           refuse helper-queue admission — never in-flight requests.")

let shed_idle_after =
  Arg.(
    value
    & opt float
        Flash_guard.Guard.default_config.Flash_guard.Guard.shed_idle_after
    & info [ "shed-idle-after" ] ~docv:"SECONDS"
        ~doc:
          "Under SLO shedding, reap keep-alive connections idle this \
           long.")

let retry_after =
  Arg.(
    value
    & opt int Flash_guard.Guard.default_config.Flash_guard.Guard.retry_after
    & info [ "retry-after" ] ~docv:"SECONDS"
        ~doc:"Delay advertised in Retry-After on guard 429/503 responses.")

let guard_term =
  let mk max_conns_per_ip max_rps_per_ip rps_window header_deadline
      min_byte_rate transfer_interval max_helper_queue max_cgi_inflight
      slo_shed shed_idle_after retry_after =
    {
      Flash_guard.Guard.max_conns_per_ip;
      max_rps_per_ip;
      rps_window;
      header_deadline;
      min_byte_rate;
      transfer_interval;
      max_helper_queue;
      max_cgi_inflight;
      slo_shed;
      shed_idle_after;
      retry_after;
    }
  in
  Term.(
    const mk $ max_conns_per_ip $ max_rps_per_ip $ rps_window
    $ header_deadline $ min_byte_rate $ transfer_interval $ max_helper_queue
    $ max_cgi $ slo_shed $ shed_idle_after $ retry_after)

(* ---- Predictive warming flags --------------------------------------- *)

let warm =
  Arg.(
    value & flag
    & info [ "warm" ]
        ~doc:
          "Predictive cache warming: mine observed demand (cache hit \
           stats, admission rejections) every --warm-interval, pin the \
           ranked hot set in the file cache, and prefetch ranked absent \
           files through the helpers' low-priority lane.  AMPED and \
           sharded modes only (warming rides the helper pool).")

let warm_interval =
  Arg.(
    value & opt float 5.
    & info [ "warm-interval" ] ~docv:"SECONDS"
        ~doc:"Seconds between mining cycles (default 5).")

let warm_budget =
  Arg.(
    value & opt float 0.25
    & info [ "warm-budget" ] ~docv:"FRACTION"
        ~doc:
          "Bound the pinned hot tier to this fraction of the file \
           cache's capacity (default 0.25).")

let warm_top_k =
  Arg.(
    value & opt int 64
    & info [ "warm-top-k" ] ~docv:"N"
        ~doc:"Candidates considered per mining cycle (default 64).")

let warm_log =
  Arg.(
    value
    & opt (some string) None
    & info [ "warm-log" ] ~docv:"FILE"
        ~doc:
          "Mine this access log once at startup (implies --warm), so a \
           restarted server prefetches the previous run's hot set \
           before its first request.  Logs written with \
           --access-log-paths mine by resolved path; plain CLF logs \
           fall back to the request target.")

let warm_term =
  let mk warm warm_interval warm_budget warm_top_k warm_log =
    (warm, warm_interval, warm_budget, warm_top_k, warm_log)
  in
  Term.(const mk $ warm $ warm_interval $ warm_budget $ warm_top_k $ warm_log)

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Debug logging.")

let cmd =
  let doc = "the Flash web server (AMPED architecture, USENIX '99)" in
  Cmd.v
    (Cmd.info "flash-serve" ~doc)
    Term.(
      const serve $ docroot $ port $ mode $ domains $ event_backend $ helpers
      $ cache_mb $ cache_policy
      $ cache_admission $ cache_budget_mb $ no_cgi $ no_align $ no_writev
      $ no_gzip $ gzip_lazy
      $ access_log $ access_log_timing $ access_log_paths $ status_path
      $ no_status $ stall_ms
      $ no_trace $ trace_capacity $ trace_path $ slow_request_ms
      $ slow_request_log $ metrics_path $ no_metrics $ latency_slo
      $ recorder_dump $ recorder_interval $ guard_term $ warm_term $ verbose)

let () = exit (Cmd.eval cmd)
