(* flash-bench: a small httperf-style load generator for the live server
   (and any HTTP/1.x server): N closed-loop client threads, reporting
   throughput and response-time percentiles.  Latencies go into the same
   log-bucketed histogram the server's /server-status reports
   (Obs.Histogram), one per worker, merged at the end.

     dune exec bin/flash_serve.exe -- --docroot ./site --port 8080 &
     dune exec bin/flash_bench.exe -- --host 127.0.0.1 --port 8080 \
       --path /index.html --clients 16 --duration 5 --keep-alive *)

open Cmdliner

type worker_stats = {
  mutable completed : int;
  mutable errors : int;
  mutable bytes : int;
  latencies : Obs.Histogram.t;  (* seconds; merged across workers *)
}

let new_stats () =
  { completed = 0; errors = 0; bytes = 0; latencies = Obs.Histogram.create () }

let record stats latency bytes ok =
  if ok then begin
    stats.completed <- stats.completed + 1;
    stats.bytes <- stats.bytes + bytes;
    Obs.Histogram.record stats.latencies latency
  end
  else stats.errors <- stats.errors + 1

let worker ~host ~port ~path ~headers ~expect ~keep_alive ~deadline stats () =
  let run_one_keepalive () =
    let session = Flash_live.Client.Session.connect ~host ~port in
    Fun.protect
      ~finally:(fun () -> Flash_live.Client.Session.close session)
      (fun () ->
        while Unix.gettimeofday () < deadline do
          let t0 = Unix.gettimeofday () in
          match Flash_live.Client.Session.request ~headers session path with
          | r ->
              record stats
                (Unix.gettimeofday () -. t0)
                (String.length r.Flash_live.Client.body)
                (r.Flash_live.Client.status = expect)
          | exception _ -> raise Exit
        done)
  in
  let run_one_conn_per_request () =
    while Unix.gettimeofday () < deadline do
      let t0 = Unix.gettimeofday () in
      match Flash_live.Client.get ~headers ~host ~port path with
      | r ->
          record stats
            (Unix.gettimeofday () -. t0)
            (String.length r.Flash_live.Client.body)
            (r.Flash_live.Client.status = expect)
      | exception _ -> stats.errors <- stats.errors + 1
    done
  in
  try if keep_alive then run_one_keepalive () else run_one_conn_per_request ()
  with Exit | _ -> ()

(* Workload scenarios over the HTTP/1.1 semantics: [full] is the plain
   200 baseline; [conditional] revalidates with the representation's
   own ETag on every request (the steady state of a client population
   with warm caches — all 304s, no body bytes); [range] asks for the
   first KiB of the target (the resumed-download shape — all 206s). *)
let scenario_setup ~host ~port ~path = function
  | "full" -> ([], 200)
  | "conditional" -> (
      (* Learn the current validator once, then revalidate with it. *)
      match Flash_live.Client.get ~host ~port path with
      | { Flash_live.Client.status = 200; headers; _ } -> (
          match List.assoc_opt "etag" headers with
          | Some etag -> ([ ("If-None-Match", etag) ], 304)
          | None ->
              Format.eprintf "conditional scenario: no ETag on %s@." path;
              exit 2)
      | r ->
          Format.eprintf "conditional scenario: prefetch got %d@."
            r.Flash_live.Client.status;
          exit 2
      | exception e ->
          Format.eprintf "conditional scenario: prefetch failed (%s)@."
            (Printexc.to_string e);
          exit 2)
  | "range" -> ([ ("Range", "bytes=0-1023") ], 206)
  | other ->
      Format.eprintf "unknown scenario %S (full|conditional|range)@." other;
      exit 2

(* Server-side send-path efficiency, measured by scraping the server's
   /server-status?json before and after the run and differencing its
   counters.  The scrapes themselves are requests, so the figures carry
   ±1-request noise — irrelevant at benchmark volumes. *)
type server_delta = {
  send_path : string;  (* "writev" | "copy" per the server *)
  backend : string;  (* readiness backend ("select" | "poll" | "epoll") *)
  server_requests : int;
  syscalls_per_request : float;  (* (writev + write) calls / request *)
  copies_per_request : float;  (* userspace-copied bytes / request *)
  wakeups : int;  (* loop wakeups during the run *)
  wakeups_per_request : float;
      (* loop wakeups / request — the figure idle connections inflate
         on select/poll (every idle fd is re-scanned each wakeup) but
         not on epoll (kernel-held interest, O(ready) wakeups) *)
}

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let json_int s key =
  match find_sub s (Printf.sprintf "%S:" key) with
  | None -> None
  | Some i ->
      let n = String.length s in
      let j = ref i in
      while
        !j < n && (match s.[!j] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr j
      done;
      int_of_string_opt (String.sub s i (!j - i))

let json_str s key =
  match find_sub s (Printf.sprintf "%S:\"" key) with
  | None -> None
  | Some i -> (
      match String.index_from_opt s i '"' with
      | None -> None
      | Some j -> Some (String.sub s i (j - i)))

let scrape_status ~host ~port status_path =
  match Flash_live.Client.get ~host ~port (status_path ^ "?json") with
  | r when r.Flash_live.Client.status = 200 -> Some r.Flash_live.Client.body
  | _ -> None
  | exception _ -> None

(* The flight-recorder time series for the run: scrape
   [?window=N] after the workers finish and extract the rollup array —
   per-second req/s, hit rate and windowed percentiles for the JSON
   artifact. *)
let scrape_timeseries ~host ~port status_path n =
  match
    Flash_live.Client.get ~host ~port
      (Printf.sprintf "%s?window=%d" status_path n)
  with
  | r when r.Flash_live.Client.status = 200 -> (
      let body = r.Flash_live.Client.body in
      match (find_sub body "\"rollups\":", String.rindex_opt body ']') with
      | Some i, Some j when j >= i -> Some (String.sub body i (j - i + 1))
      | _ -> None)
  | _ -> None
  | exception _ -> None

let server_delta before after =
  match (before, after) with
  | Some b, Some a -> (
      match (json_int b "requests", json_int a "requests") with
      | Some r0, Some r1 when r1 > r0 ->
          let d key =
            match (json_int b key, json_int a key) with
            | Some x0, Some x1 -> x1 - x0
            | _ -> 0
          in
          let dreq = r1 - r0 in
          let dwake = d "wakeups" in
          Some
            {
              send_path = Option.value (json_str a "path") ~default:"unknown";
              backend = Option.value (json_str a "backend") ~default:"unknown";
              server_requests = dreq;
              syscalls_per_request =
                float_of_int (d "writev_calls" + d "write_calls")
                /. float_of_int dreq;
              copies_per_request =
                float_of_int (d "bytes_copied") /. float_of_int dreq;
              wakeups = dwake;
              wakeups_per_request = float_of_int dwake /. float_of_int dreq;
            }
      | _ -> None)
  | _ -> None

(* Machine-readable results, for CI artifacts and regression tracking.
   Same numbers the human-readable report prints. *)
let write_json ~file ~scenario ~completed ~errors ~bytes ~elapsed
    ~idle_connections ~client_workers ~server ~timeseries latency =
  let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0" in
  let ms x = num (1000. *. x) in
  let pct p = ms (Obs.Histogram.percentile latency p) in
  let server_json =
    match server with
    | None -> "null"
    | Some d ->
        Printf.sprintf
          {|{"send_path":%S,"backend":%S,"requests":%d,"syscalls_per_request":%s,"copies_per_request":%s,"wakeups":%d,"wakeups_per_request":%s}|}
          d.send_path d.backend d.server_requests
          (num d.syscalls_per_request)
          (num d.copies_per_request)
          d.wakeups
          (num d.wakeups_per_request)
  in
  let body =
    Printf.sprintf
      {|{"scenario":%S,"completed":%d,"errors":%d,"elapsed_s":%s,"idle_connections":%d,"client_workers":%d,"throughput_rps":%s,"throughput_mbps":%s,"latency_ms":{"mean":%s,"p50":%s,"p90":%s,"p99":%s,"max":%s,"samples":%d},"server":%s,"timeseries":%s}|}
      scenario completed errors (num elapsed) idle_connections client_workers
      (num (float_of_int completed /. elapsed))
      (num (float_of_int bytes *. 8. /. elapsed /. 1e6))
      (ms (Obs.Histogram.mean latency))
      (pct 50.) (pct 90.) (pct 99.)
      (ms (Obs.Histogram.max latency))
      (Obs.Histogram.count latency)
      server_json
      (Option.value timeseries ~default:"[]")
    ^ "\n"
  in
  let oc = open_out file in
  output_string oc body;
  close_out oc

(* Many-idle-connections scenario: open N keep-alive sessions, warm
   each with one request, then leave them idle for the whole run while
   the active clients drive load.  What this measures is the cost of
   {e carrying} idle watched fds: select/poll re-scan every one of them
   on each wakeup, epoll's wait stays O(ready). *)
let open_idle_connections ~host ~port ~path n =
  let rec go acc i =
    if i >= n then acc
    else
      match Flash_live.Client.Session.connect ~host ~port with
      | session -> (
          match Flash_live.Client.Session.request session path with
          | _ -> go (session :: acc) (i + 1)
          | exception _ ->
              Flash_live.Client.Session.close session;
              acc)
      | exception _ -> acc
  in
  go [] 0

(* Run [clients] closed-loop clients for [duration] seconds and return
   their stats plus the wall time.  With [client_workers] > 1 the
   clients are spread over that many OCaml domains: all systhreads of
   one domain share a single runtime lock, which caps a one-domain
   generator well below what a multi-domain (sharded) server can
   absorb, so measuring server scaling needs a generator that scales
   too. *)
let drive_load ~host ~port ~path ~headers ~expect ~keep_alive ~duration
    ~clients ~client_workers =
  let deadline = Unix.gettimeofday () +. duration in
  let stats = Array.init clients (fun _ -> new_stats ()) in
  let run_slice lo hi =
    let threads = ref [] in
    for i = lo to hi - 1 do
      threads :=
        Thread.create
          (worker ~host ~port ~path ~headers ~expect ~keep_alive ~deadline
             stats.(i))
          ()
        :: !threads
    done;
    List.iter Thread.join !threads
  in
  let workers = max 1 (min client_workers clients) in
  let t0 = Unix.gettimeofday () in
  if workers = 1 then run_slice 0 clients
  else begin
    let per = clients / workers and extra = clients mod workers in
    let domains =
      List.init workers (fun w ->
          let lo = (w * per) + min w extra in
          let hi = lo + per + if w < extra then 1 else 0 in
          Domain.spawn (fun () -> run_slice lo hi))
    in
    List.iter Domain.join domains
  end;
  (Array.to_list stats, Unix.gettimeofday () -. t0)

let run host port path clients client_workers duration keep_alive scenario
    idle_connections json_file status_path no_server_stats =
  Format.printf
    "flash-bench: %d clients (%d worker domains) -> http://%s:%d%s for %.1fs \
     (%s, %s scenario)@."
    clients
    (max 1 (min client_workers clients))
    host port path duration
    (if keep_alive then "keep-alive" else "connection per request")
    scenario;
  let headers, expect = scenario_setup ~host ~port ~path scenario in
  let idle_sessions =
    if idle_connections <= 0 then []
    else begin
      let sessions = open_idle_connections ~host ~port ~path idle_connections in
      Format.printf "idle:       holding %d warm keep-alive connections@."
        (List.length sessions);
      sessions
    end
  in
  let scrape () =
    if no_server_stats then None else scrape_status ~host ~port status_path
  in
  let before = scrape () in
  let stats, elapsed =
    drive_load ~host ~port ~path ~headers ~expect ~keep_alive ~duration
      ~clients ~client_workers
  in
  let server = server_delta before (scrape ()) in
  let timeseries =
    if no_server_stats then None
    else
      scrape_timeseries ~host ~port status_path
        (int_of_float (Float.ceil elapsed) + 2)
  in
  List.iter Flash_live.Client.Session.close idle_sessions;
  let completed = List.fold_left (fun acc s -> acc + s.completed) 0 stats in
  let errors = List.fold_left (fun acc s -> acc + s.errors) 0 stats in
  let bytes = List.fold_left (fun acc s -> acc + s.bytes) 0 stats in
  let latency =
    List.fold_left
      (fun acc s -> Obs.Histogram.merge acc s.latencies)
      (Obs.Histogram.create ()) stats
  in
  Format.printf "requests:   %d ok, %d errors in %.2fs@." completed errors elapsed;
  Format.printf "throughput: %.1f req/s, %.2f Mb/s (body bytes)@."
    (float_of_int completed /. elapsed)
    (float_of_int bytes *. 8. /. elapsed /. 1e6);
  if Obs.Histogram.count latency > 0 then begin
    let ms p = 1000. *. Obs.Histogram.percentile latency p in
    Format.printf
      "latency:    mean %.2f ms, p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max %.2f ms (%d samples)@."
      (1000. *. Obs.Histogram.mean latency)
      (ms 50.) (ms 90.) (ms 99.)
      (1000. *. Obs.Histogram.max latency)
      (Obs.Histogram.count latency)
  end;
  (match server with
  | Some d ->
      Format.printf
        "server:     %s send path, %.2f syscalls/req, %.1f bytes copied/req \
         (%d requests)@."
        d.send_path d.syscalls_per_request d.copies_per_request
        d.server_requests;
      Format.printf
        "loop:       %s backend, %d wakeups (%.2f wakeups/req)@." d.backend
        d.wakeups d.wakeups_per_request
  | None ->
      if not no_server_stats then
        Format.printf "server:     status endpoint not available@.");
  (match timeseries with
  | Some ts ->
      let rollups =
        (* count rollup objects, not total braces: each rollup is one
           flat object in the array *)
        String.fold_left (fun acc c -> if c = '{' then acc + 1 else acc) 0 ts
      in
      Format.printf "recorder:   %d rollups captured@." rollups
  | None -> ());
  (match json_file with
  | Some file ->
      write_json ~file ~scenario ~completed ~errors ~bytes ~elapsed
        ~idle_connections:(List.length idle_sessions)
        ~client_workers:(max 1 (min client_workers clients))
        ~server ~timeseries latency;
      Format.printf "json:       wrote %s@." file
  | None -> ());
  if errors > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Domain-scaling sweep: start an in-process [Sharded d] server for
   d = 1..N, drive the same closed-loop load at each, and emit the
   scaling curve (req/s per domain count, plus each shard's share of
   the requests, scraped from the status page's sharding block).       *)
(* ------------------------------------------------------------------ *)

(* Every "requests":<int> inside the status JSON's "shards":[...]
   array — one entry per shard, in shard order. *)
let shard_requests body =
  match find_sub body "\"shards\":[" with
  | None -> []
  | Some i -> (
      match String.index_from_opt body i ']' with
      | None -> []
      | Some close ->
          let arr = String.sub body i (close - i) in
          let n = String.length arr in
          let rec go acc off =
            if off >= n then List.rev acc
            else
              match find_sub (String.sub arr off (n - off)) "\"requests\":" with
              | None -> List.rev acc
              | Some rel -> (
                  let s = off + rel in
                  let j = ref s in
                  while
                    !j < n
                    && match arr.[!j] with '0' .. '9' -> true | _ -> false
                  do
                    incr j
                  done;
                  match int_of_string_opt (String.sub arr s (!j - s)) with
                  | Some v -> go (v :: acc) !j
                  | None -> go acc !j)
          in
          go [] 0)

type sweep_point = {
  domains : int;
  point_ok : int;
  point_errors : int;
  elapsed : float;
  rps : float;
  per_shard : int list;
}

let run_sweep ~docroot ~backend ~max_domains ~path ~clients ~client_workers
    ~duration ~keep_alive ~json_file =
  let module Server = Flash_live.Server in
  let workers = max 1 (min client_workers clients) in
  Format.printf
    "flash-bench: domain sweep 1..%d (%s backend, %d clients x %d worker \
     domains, %.1fs per point, %s)@."
    max_domains (Evio.name backend) clients workers duration
    (if keep_alive then "keep-alive" else "connection per request");
  let bench_point domains =
    let config =
      {
        (Server.default_config ~docroot) with
        Server.mode = Server.Sharded domains;
        port = 0;
        event_backend = backend;
      }
    in
    let server = Server.start_background config in
    Fun.protect
      ~finally:(fun () -> Server.stop server)
      (fun () ->
        let host = "127.0.0.1" and port = Server.port server in
        (* one warm-up request so every point starts with a primed
           cache rather than charging the first point the misses *)
        (try ignore (Flash_live.Client.get ~host ~port path)
         with _ -> ());
        let stats, elapsed =
          drive_load ~host ~port ~path ~headers:[] ~expect:200 ~keep_alive
            ~duration ~clients ~client_workers
        in
        let point_ok = List.fold_left (fun a s -> a + s.completed) 0 stats in
        let point_errors = List.fold_left (fun a s -> a + s.errors) 0 stats in
        let per_shard =
          match scrape_status ~host ~port "/server-status" with
          | Some body -> shard_requests body
          | None -> []
        in
        let rps = float_of_int point_ok /. elapsed in
        Format.printf
          "domains %d:  %8.1f req/s  (%d ok, %d errors; shard requests: %s)@."
          domains rps point_ok point_errors
          (String.concat "/" (List.map string_of_int per_shard));
        { domains; point_ok; point_errors; elapsed; rps; per_shard })
  in
  let points = List.init max_domains (fun i -> bench_point (i + 1)) in
  let base_rps =
    match points with p :: _ -> p.rps | [] -> 0.
  in
  List.iter
    (fun p ->
      if p.domains > 1 && base_rps > 0. then
        Format.printf "speedup:    %d domains = %.2fx over 1@." p.domains
          (p.rps /. base_rps))
    points;
  (match json_file with
  | Some file ->
      let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0" in
      let point_json p =
        Printf.sprintf
          {|{"domains":%d,"completed":%d,"errors":%d,"elapsed_s":%s,"throughput_rps":%s,"speedup_vs_1":%s,"per_shard_requests":[%s]}|}
          p.domains p.point_ok p.point_errors (num p.elapsed) (num p.rps)
          (num (if base_rps > 0. then p.rps /. base_rps else 0.))
          (String.concat "," (List.map string_of_int p.per_shard))
      in
      let body =
        Printf.sprintf
          {|{"sweep":"domains","backend":%S,"path":%S,"clients":%d,"client_workers":%d,"duration_s":%s,"keep_alive":%b,"cores":%d,"points":[%s]}|}
          (Evio.name backend) path clients workers (num duration) keep_alive
          (Domain.recommended_domain_count ())
          (String.concat "," (List.map point_json points))
        ^ "\n"
      in
      let oc = open_out file in
      output_string oc body;
      close_out oc;
      Format.printf "json:       wrote %s@." file
  | None -> ());
  if List.exists (fun p -> p.point_errors > 0) points then exit 1

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port"; "p" ] ~docv:"PORT"
        ~doc:
          "Server port.  Required unless $(b,--sweep-domains) is given \
           (the sweep starts its own in-process servers).")

let path =
  Arg.(value & opt string "/" & info [ "path" ] ~docv:"PATH" ~doc:"Request target.")

let clients =
  Arg.(value & opt int 8 & info [ "clients"; "c" ] ~docv:"N" ~doc:"Concurrent clients.")

let client_workers =
  Arg.(
    value & opt int 1
    & info [ "client-workers"; "w" ] ~docv:"K"
        ~doc:
          "Spread the clients over $(docv) OCaml domains.  The default \
           single-domain generator serialises all client threads behind \
           one runtime lock; benchmarking a multi-domain (sharded) \
           server needs a generator that can scale past one core too.")

let duration =
  Arg.(value & opt float 5. & info [ "duration"; "t" ] ~docv:"SEC" ~doc:"Test duration.")

let keep_alive =
  Arg.(value & flag & info [ "keep-alive"; "k" ] ~doc:"Reuse connections (HTTP/1.1).")

let scenario =
  Arg.(
    value & opt string "full"
    & info [ "scenario" ] ~docv:"KIND"
        ~doc:
          "Request shape: full (plain 200s, default); conditional \
           (revalidate with If-None-Match, expecting 304s — the \
           warm-client-cache steady state); range (Range: bytes=0-1023, \
           expecting 206s — the resumed-download shape).")

let idle_connections =
  Arg.(
    value & opt int 0
    & info [ "connections"; "idle" ] ~docv:"N"
        ~doc:
          "Additionally hold $(docv) warm, idle keep-alive connections \
           open for the whole run (the many-idle-connections scenario \
           event backends are compared on).")

let json_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write results as JSON to $(docv).")

let status_path =
  Arg.(
    value
    & opt string "/server-status"
    & info [ "server-status" ] ~docv:"PATH"
        ~doc:
          "Server status endpoint to scrape before/after the run for \
           syscalls-per-request and copies-per-request figures.")

let no_server_stats =
  Arg.(
    value & flag
    & info [ "no-server-stats" ]
        ~doc:"Skip scraping the server status endpoint.")

let sweep_domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "sweep-domains" ] ~docv:"N"
        ~doc:
          "Domain-scaling sweep: start an in-process sharded server for \
           each domain count 1..$(docv), bench each for $(b,--duration) \
           seconds, and report the scaling curve.  Needs $(b,--docroot); \
           ignores $(b,--host)/$(b,--port).")

let docroot =
  Arg.(
    value
    & opt (some string) None
    & info [ "docroot" ] ~docv:"DIR"
        ~doc:"Document root for the sweep's in-process servers.")

let sweep_backend =
  let backend_conv =
    let parse s =
      match Evio.of_string s with
      | Ok kind -> Ok kind
      | Error msg -> Error (`Msg msg)
    in
    let print ppf kind = Format.pp_print_string ppf (Evio.name kind) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt backend_conv Evio.Select
    & info [ "sweep-backend" ] ~docv:"BACKEND"
        ~doc:
          "Event-readiness backend for the sweep's servers \
           (select|poll|epoll; default select).")

let main host port path clients client_workers duration keep_alive scenario
    idle_connections json_file status_path no_server_stats sweep_domains
    docroot sweep_backend =
  match sweep_domains with
  | Some max_domains ->
      if max_domains < 1 then begin
        Format.eprintf "--sweep-domains must be at least 1@.";
        exit 2
      end;
      let docroot =
        match docroot with
        | Some d -> d
        | None ->
            Format.eprintf "--sweep-domains needs --docroot DIR@.";
            exit 2
      in
      run_sweep ~docroot ~backend:sweep_backend ~max_domains ~path ~clients
        ~client_workers ~duration ~keep_alive ~json_file
  | None -> (
      match port with
      | Some port ->
          run host port path clients client_workers duration keep_alive
            scenario idle_connections json_file status_path no_server_stats
      | None ->
          Format.eprintf "--port is required unless --sweep-domains is given@.";
          exit 2)

let cmd =
  let doc = "closed-loop HTTP load generator (for the live Flash server)" in
  Cmd.v (Cmd.info "flash-bench" ~doc)
    Term.(
      const main $ host $ port $ path $ clients $ client_workers $ duration
      $ keep_alive $ scenario $ idle_connections $ json_file $ status_path
      $ no_server_stats $ sweep_domains $ docroot $ sweep_backend)

let () = exit (Cmd.eval cmd)
