(* flash-bench: a small httperf-style load generator for the live server
   (and any HTTP/1.x server): N closed-loop client threads, reporting
   throughput and response-time percentiles.  Latencies go into the same
   log-bucketed histogram the server's /server-status reports
   (Obs.Histogram), one per worker, merged at the end.

     dune exec bin/flash_serve.exe -- --docroot ./site --port 8080 &
     dune exec bin/flash_bench.exe -- --host 127.0.0.1 --port 8080 \
       --path /index.html --clients 16 --duration 5 --keep-alive *)

open Cmdliner

type worker_stats = {
  mutable completed : int;
  mutable errors : int;
  mutable bytes : int;
  latencies : Obs.Histogram.t;  (* seconds; merged across workers *)
}

let new_stats () =
  { completed = 0; errors = 0; bytes = 0; latencies = Obs.Histogram.create () }

let record stats latency bytes ok =
  if ok then begin
    stats.completed <- stats.completed + 1;
    stats.bytes <- stats.bytes + bytes;
    Obs.Histogram.record stats.latencies latency
  end
  else stats.errors <- stats.errors + 1

let worker ~host ~port ~path ~headers ~expect ~keep_alive ~deadline stats () =
  let run_one_keepalive () =
    let session = Flash_live.Client.Session.connect ~host ~port () in
    Fun.protect
      ~finally:(fun () -> Flash_live.Client.Session.close session)
      (fun () ->
        while Unix.gettimeofday () < deadline do
          let t0 = Unix.gettimeofday () in
          match Flash_live.Client.Session.request ~headers session path with
          | r ->
              record stats
                (Unix.gettimeofday () -. t0)
                (String.length r.Flash_live.Client.body)
                (r.Flash_live.Client.status = expect)
          | exception _ -> raise Exit
        done)
  in
  let run_one_conn_per_request () =
    while Unix.gettimeofday () < deadline do
      let t0 = Unix.gettimeofday () in
      match Flash_live.Client.get ~headers ~host ~port path with
      | r ->
          record stats
            (Unix.gettimeofday () -. t0)
            (String.length r.Flash_live.Client.body)
            (r.Flash_live.Client.status = expect)
      | exception _ -> stats.errors <- stats.errors + 1
    done
  in
  try if keep_alive then run_one_keepalive () else run_one_conn_per_request ()
  with Exit | _ -> ()

(* Workload scenarios over the HTTP/1.1 semantics: [full] is the plain
   200 baseline; [conditional] revalidates with the representation's
   own ETag on every request (the steady state of a client population
   with warm caches — all 304s, no body bytes); [range] asks for the
   first KiB of the target (the resumed-download shape — all 206s). *)
let scenario_setup ~host ~port ~path = function
  | "full" -> ([], 200)
  | "conditional" -> (
      (* Learn the current validator once, then revalidate with it. *)
      match Flash_live.Client.get ~host ~port path with
      | { Flash_live.Client.status = 200; headers; _ } -> (
          match List.assoc_opt "etag" headers with
          | Some etag -> ([ ("If-None-Match", etag) ], 304)
          | None ->
              Format.eprintf "conditional scenario: no ETag on %s@." path;
              exit 2)
      | r ->
          Format.eprintf "conditional scenario: prefetch got %d@."
            r.Flash_live.Client.status;
          exit 2
      | exception e ->
          Format.eprintf "conditional scenario: prefetch failed (%s)@."
            (Printexc.to_string e);
          exit 2)
  | "range" -> ([ ("Range", "bytes=0-1023") ], 206)
  | other ->
      Format.eprintf "unknown scenario %S (full|conditional|range)@." other;
      exit 2

(* Server-side send-path efficiency, measured by scraping the server's
   /server-status?json before and after the run and differencing its
   counters.  The scrapes themselves are requests, so the figures carry
   ±1-request noise — irrelevant at benchmark volumes. *)
type server_delta = {
  send_path : string;  (* "writev" | "copy" per the server *)
  backend : string;  (* readiness backend ("select" | "poll" | "epoll") *)
  server_requests : int;
  syscalls_per_request : float;  (* (writev + write) calls / request *)
  copies_per_request : float;  (* userspace-copied bytes / request *)
  wakeups : int;  (* loop wakeups during the run *)
  wakeups_per_request : float;
      (* loop wakeups / request — the figure idle connections inflate
         on select/poll (every idle fd is re-scanned each wakeup) but
         not on epoll (kernel-held interest, O(ready) wakeups) *)
}

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let json_int s key =
  match find_sub s (Printf.sprintf "%S:" key) with
  | None -> None
  | Some i ->
      let n = String.length s in
      let j = ref i in
      while
        !j < n && (match s.[!j] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr j
      done;
      int_of_string_opt (String.sub s i (!j - i))

let json_str s key =
  match find_sub s (Printf.sprintf "%S:\"" key) with
  | None -> None
  | Some i -> (
      match String.index_from_opt s i '"' with
      | None -> None
      | Some j -> Some (String.sub s i (j - i)))

let scrape_status ~host ~port status_path =
  match Flash_live.Client.get ~host ~port (status_path ^ "?json") with
  | r when r.Flash_live.Client.status = 200 -> Some r.Flash_live.Client.body
  | _ -> None
  | exception _ -> None

(* The flight-recorder time series for the run: scrape
   [?window=N] after the workers finish and extract the rollup array —
   per-second req/s, hit rate and windowed percentiles for the JSON
   artifact. *)
let scrape_timeseries ~host ~port status_path n =
  match
    Flash_live.Client.get ~host ~port
      (Printf.sprintf "%s?window=%d" status_path n)
  with
  | r when r.Flash_live.Client.status = 200 -> (
      let body = r.Flash_live.Client.body in
      match (find_sub body "\"rollups\":", String.rindex_opt body ']') with
      | Some i, Some j when j >= i -> Some (String.sub body i (j - i + 1))
      | _ -> None)
  | _ -> None
  | exception _ -> None

let server_delta before after =
  match (before, after) with
  | Some b, Some a -> (
      match (json_int b "requests", json_int a "requests") with
      | Some r0, Some r1 when r1 > r0 ->
          let d key =
            match (json_int b key, json_int a key) with
            | Some x0, Some x1 -> x1 - x0
            | _ -> 0
          in
          let dreq = r1 - r0 in
          let dwake = d "wakeups" in
          Some
            {
              send_path = Option.value (json_str a "path") ~default:"unknown";
              backend = Option.value (json_str a "backend") ~default:"unknown";
              server_requests = dreq;
              syscalls_per_request =
                float_of_int (d "writev_calls" + d "write_calls")
                /. float_of_int dreq;
              copies_per_request =
                float_of_int (d "bytes_copied") /. float_of_int dreq;
              wakeups = dwake;
              wakeups_per_request = float_of_int dwake /. float_of_int dreq;
            }
      | _ -> None)
  | _ -> None

(* Machine-readable results, for CI artifacts and regression tracking.
   Same numbers the human-readable report prints. *)
let write_json ~file ~scenario ~completed ~errors ~bytes ~elapsed
    ~idle_connections ~client_workers ~server ~timeseries latency =
  let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0" in
  let ms x = num (1000. *. x) in
  let pct p = ms (Obs.Histogram.percentile latency p) in
  let server_json =
    match server with
    | None -> "null"
    | Some d ->
        Printf.sprintf
          {|{"send_path":%S,"backend":%S,"requests":%d,"syscalls_per_request":%s,"copies_per_request":%s,"wakeups":%d,"wakeups_per_request":%s}|}
          d.send_path d.backend d.server_requests
          (num d.syscalls_per_request)
          (num d.copies_per_request)
          d.wakeups
          (num d.wakeups_per_request)
  in
  let body =
    Printf.sprintf
      {|{"scenario":%S,"completed":%d,"errors":%d,"elapsed_s":%s,"idle_connections":%d,"client_workers":%d,"throughput_rps":%s,"throughput_mbps":%s,"latency_ms":{"mean":%s,"p50":%s,"p90":%s,"p99":%s,"max":%s,"samples":%d},"server":%s,"timeseries":%s}|}
      scenario completed errors (num elapsed) idle_connections client_workers
      (num (float_of_int completed /. elapsed))
      (num (float_of_int bytes *. 8. /. elapsed /. 1e6))
      (ms (Obs.Histogram.mean latency))
      (pct 50.) (pct 90.) (pct 99.)
      (ms (Obs.Histogram.max latency))
      (Obs.Histogram.count latency)
      server_json
      (Option.value timeseries ~default:"[]")
    ^ "\n"
  in
  let oc = open_out file in
  output_string oc body;
  close_out oc

(* Many-idle-connections scenario: open N keep-alive sessions, warm
   each with one request, then leave them idle for the whole run while
   the active clients drive load.  What this measures is the cost of
   {e carrying} idle watched fds: select/poll re-scan every one of them
   on each wakeup, epoll's wait stays O(ready). *)
let open_idle_connections ~host ~port ~path n =
  let rec go acc i =
    if i >= n then acc
    else
      match Flash_live.Client.Session.connect ~host ~port () with
      | session -> (
          match Flash_live.Client.Session.request session path with
          | _ -> go (session :: acc) (i + 1)
          | exception _ ->
              Flash_live.Client.Session.close session;
              acc)
      | exception _ -> acc
  in
  go [] 0

(* Run [clients] closed-loop clients for [duration] seconds and return
   their stats plus the wall time.  With [client_workers] > 1 the
   clients are spread over that many OCaml domains: all systhreads of
   one domain share a single runtime lock, which caps a one-domain
   generator well below what a multi-domain (sharded) server can
   absorb, so measuring server scaling needs a generator that scales
   too. *)
let drive_load ~host ~port ~path ~headers ~expect ~keep_alive ~duration
    ~clients ~client_workers =
  let deadline = Unix.gettimeofday () +. duration in
  let stats = Array.init clients (fun _ -> new_stats ()) in
  let run_slice lo hi =
    let threads = ref [] in
    for i = lo to hi - 1 do
      threads :=
        Thread.create
          (worker ~host ~port ~path ~headers ~expect ~keep_alive ~deadline
             stats.(i))
          ()
        :: !threads
    done;
    List.iter Thread.join !threads
  in
  let workers = max 1 (min client_workers clients) in
  let t0 = Unix.gettimeofday () in
  if workers = 1 then run_slice 0 clients
  else begin
    let per = clients / workers and extra = clients mod workers in
    let domains =
      List.init workers (fun w ->
          let lo = (w * per) + min w extra in
          let hi = lo + per + if w < extra then 1 else 0 in
          Domain.spawn (fun () -> run_slice lo hi))
    in
    List.iter Domain.join domains
  end;
  (Array.to_list stats, Unix.gettimeofday () -. t0)

let run host port path clients client_workers duration keep_alive scenario
    idle_connections json_file status_path no_server_stats =
  Format.printf
    "flash-bench: %d clients (%d worker domains) -> http://%s:%d%s for %.1fs \
     (%s, %s scenario)@."
    clients
    (max 1 (min client_workers clients))
    host port path duration
    (if keep_alive then "keep-alive" else "connection per request")
    scenario;
  let headers, expect = scenario_setup ~host ~port ~path scenario in
  let idle_sessions =
    if idle_connections <= 0 then []
    else begin
      let sessions = open_idle_connections ~host ~port ~path idle_connections in
      Format.printf "idle:       holding %d warm keep-alive connections@."
        (List.length sessions);
      sessions
    end
  in
  let scrape () =
    if no_server_stats then None else scrape_status ~host ~port status_path
  in
  let before = scrape () in
  let stats, elapsed =
    drive_load ~host ~port ~path ~headers ~expect ~keep_alive ~duration
      ~clients ~client_workers
  in
  let server = server_delta before (scrape ()) in
  let timeseries =
    if no_server_stats then None
    else
      scrape_timeseries ~host ~port status_path
        (int_of_float (Float.ceil elapsed) + 2)
  in
  List.iter Flash_live.Client.Session.close idle_sessions;
  let completed = List.fold_left (fun acc s -> acc + s.completed) 0 stats in
  let errors = List.fold_left (fun acc s -> acc + s.errors) 0 stats in
  let bytes = List.fold_left (fun acc s -> acc + s.bytes) 0 stats in
  let latency =
    List.fold_left
      (fun acc s -> Obs.Histogram.merge acc s.latencies)
      (Obs.Histogram.create ()) stats
  in
  Format.printf "requests:   %d ok, %d errors in %.2fs@." completed errors elapsed;
  Format.printf "throughput: %.1f req/s, %.2f Mb/s (body bytes)@."
    (float_of_int completed /. elapsed)
    (float_of_int bytes *. 8. /. elapsed /. 1e6);
  if Obs.Histogram.count latency > 0 then begin
    let ms p = 1000. *. Obs.Histogram.percentile latency p in
    Format.printf
      "latency:    mean %.2f ms, p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max %.2f ms (%d samples)@."
      (1000. *. Obs.Histogram.mean latency)
      (ms 50.) (ms 90.) (ms 99.)
      (1000. *. Obs.Histogram.max latency)
      (Obs.Histogram.count latency)
  end;
  (match server with
  | Some d ->
      Format.printf
        "server:     %s send path, %.2f syscalls/req, %.1f bytes copied/req \
         (%d requests)@."
        d.send_path d.syscalls_per_request d.copies_per_request
        d.server_requests;
      Format.printf
        "loop:       %s backend, %d wakeups (%.2f wakeups/req)@." d.backend
        d.wakeups d.wakeups_per_request
  | None ->
      if not no_server_stats then
        Format.printf "server:     status endpoint not available@.");
  (match timeseries with
  | Some ts ->
      let rollups =
        (* count rollup objects, not total braces: each rollup is one
           flat object in the array *)
        String.fold_left (fun acc c -> if c = '{' then acc + 1 else acc) 0 ts
      in
      Format.printf "recorder:   %d rollups captured@." rollups
  | None -> ());
  (match json_file with
  | Some file ->
      write_json ~file ~scenario ~completed ~errors ~bytes ~elapsed
        ~idle_connections:(List.length idle_sessions)
        ~client_workers:(max 1 (min client_workers clients))
        ~server ~timeseries latency;
      Format.printf "json:       wrote %s@." file
  | None -> ());
  if errors > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* Domain-scaling sweep: start an in-process [Sharded d] server for
   d = 1..N, drive the same closed-loop load at each, and emit the
   scaling curve (req/s per domain count, plus each shard's share of
   the requests, scraped from the status page's sharding block).       *)
(* ------------------------------------------------------------------ *)

(* Every "requests":<int> inside the status JSON's "shards":[...]
   array — one entry per shard, in shard order. *)
let shard_requests body =
  match find_sub body "\"shards\":[" with
  | None -> []
  | Some i -> (
      match String.index_from_opt body i ']' with
      | None -> []
      | Some close ->
          let arr = String.sub body i (close - i) in
          let n = String.length arr in
          let rec go acc off =
            if off >= n then List.rev acc
            else
              match find_sub (String.sub arr off (n - off)) "\"requests\":" with
              | None -> List.rev acc
              | Some rel -> (
                  let s = off + rel in
                  let j = ref s in
                  while
                    !j < n
                    && match arr.[!j] with '0' .. '9' -> true | _ -> false
                  do
                    incr j
                  done;
                  match int_of_string_opt (String.sub arr s (!j - s)) with
                  | Some v -> go (v :: acc) !j
                  | None -> go acc !j)
          in
          go [] 0)

type sweep_point = {
  domains : int;
  point_ok : int;
  point_errors : int;
  elapsed : float;
  rps : float;
  per_shard : int list;
}

let run_sweep ~docroot ~backend ~max_domains ~path ~clients ~client_workers
    ~duration ~keep_alive ~json_file =
  let module Server = Flash_live.Server in
  let workers = max 1 (min client_workers clients) in
  Format.printf
    "flash-bench: domain sweep 1..%d (%s backend, %d clients x %d worker \
     domains, %.1fs per point, %s)@."
    max_domains (Evio.name backend) clients workers duration
    (if keep_alive then "keep-alive" else "connection per request");
  let bench_point domains =
    let config =
      {
        (Server.default_config ~docroot) with
        Server.mode = Server.Sharded domains;
        port = 0;
        event_backend = backend;
      }
    in
    let server = Server.start_background config in
    Fun.protect
      ~finally:(fun () -> Server.stop server)
      (fun () ->
        let host = "127.0.0.1" and port = Server.port server in
        (* one warm-up request so every point starts with a primed
           cache rather than charging the first point the misses *)
        (try ignore (Flash_live.Client.get ~host ~port path)
         with _ -> ());
        let stats, elapsed =
          drive_load ~host ~port ~path ~headers:[] ~expect:200 ~keep_alive
            ~duration ~clients ~client_workers
        in
        let point_ok = List.fold_left (fun a s -> a + s.completed) 0 stats in
        let point_errors = List.fold_left (fun a s -> a + s.errors) 0 stats in
        let per_shard =
          match scrape_status ~host ~port "/server-status" with
          | Some body -> shard_requests body
          | None -> []
        in
        let rps = float_of_int point_ok /. elapsed in
        Format.printf
          "domains %d:  %8.1f req/s  (%d ok, %d errors; shard requests: %s)@."
          domains rps point_ok point_errors
          (String.concat "/" (List.map string_of_int per_shard));
        { domains; point_ok; point_errors; elapsed; rps; per_shard })
  in
  let points = List.init max_domains (fun i -> bench_point (i + 1)) in
  let base_rps =
    match points with p :: _ -> p.rps | [] -> 0.
  in
  List.iter
    (fun p ->
      if p.domains > 1 && base_rps > 0. then
        Format.printf "speedup:    %d domains = %.2fx over 1@." p.domains
          (p.rps /. base_rps))
    points;
  (match json_file with
  | Some file ->
      let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0" in
      let point_json p =
        Printf.sprintf
          {|{"domains":%d,"completed":%d,"errors":%d,"elapsed_s":%s,"throughput_rps":%s,"speedup_vs_1":%s,"per_shard_requests":[%s]}|}
          p.domains p.point_ok p.point_errors (num p.elapsed) (num p.rps)
          (num (if base_rps > 0. then p.rps /. base_rps else 0.))
          (String.concat "," (List.map string_of_int p.per_shard))
      in
      let body =
        Printf.sprintf
          {|{"sweep":"domains","backend":%S,"path":%S,"clients":%d,"client_workers":%d,"duration_s":%s,"keep_alive":%b,"cores":%d,"points":[%s]}|}
          (Evio.name backend) path clients workers (num duration) keep_alive
          (Domain.recommended_domain_count ())
          (String.concat "," (List.map point_json points))
        ^ "\n"
      in
      let oc = open_out file in
      output_string oc body;
      close_out oc;
      Format.printf "json:       wrote %s@." file
  | None -> ());
  if List.exists (fun p -> p.point_errors > 0) points then exit 1

(* ------------------------------------------------------------------ *)
(* Hostile scenarios: overload survival, measured.

   Three arms per attack, each against a fresh in-process server:
   baseline (no attack, guard off), unguarded (attack, guard off) and
   guarded (attack, guard configured for that attack).  Legitimate
   clients connect from 127.0.0.1; attackers bind their source to
   127.0.0.2 (any 127/8 address reaches loopback on Linux), so the
   guard's per-IP ledgers can discriminate attacker from victim.  The
   figure of merit is legit goodput relative to the unloaded baseline:
   an effective guard holds it near 1.0 while the unguarded ratio
   collapses.                                                          *)
(* ------------------------------------------------------------------ *)

let attacker_src = "127.0.0.2"

type attacker_stats = {
  mutable opened : int;  (* connects that succeeded *)
  mutable dropped : int;  (* connections the server closed on us *)
  mutable att_ok : int;  (* attacker requests answered 200 *)
  mutable att_refused : int;  (* attacker requests answered 4xx/5xx *)
}

let new_attacker_stats () =
  { opened = 0; dropped = 0; att_ok = 0; att_refused = 0 }

let sum_attacker_stats l =
  List.fold_left
    (fun acc s ->
      {
        opened = acc.opened + s.opened;
        dropped = acc.dropped + s.dropped;
        att_ok = acc.att_ok + s.att_ok;
        att_refused = acc.att_refused + s.att_refused;
      })
    (new_attacker_stats ()) l

let hostile_connect ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string attacker_src, 0))
   with Unix.Unix_error _ -> ());
  match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Connection flood: fill [slots] with held, silent connections and keep
   them full.  Dead slots (server refused or reaped us) are reopened at
   a bounded rate, so a guarded server pays a steady trickle of cheap
   refusals rather than an accept storm. *)
let flood_thread ~port ~deadline ~slots stats () =
  let conns = Array.make slots None in
  let probe = Bytes.create 64 in
  Array.iteri
    (fun i _ ->
      match hostile_connect ~port with
      | Some fd ->
          Unix.set_nonblock fd;
          stats.opened <- stats.opened + 1;
          conns.(i) <- Some fd
      | None -> ())
    conns;
  while Unix.gettimeofday () < deadline do
    let reopen_budget = ref 30 in
    Array.iteri
      (fun i c ->
        match c with
        | None ->
            if !reopen_budget > 0 then begin
              decr reopen_budget;
              match hostile_connect ~port with
              | Some fd ->
                  Unix.set_nonblock fd;
                  stats.opened <- stats.opened + 1;
                  conns.(i) <- Some fd
              | None -> ()
            end
        | Some fd -> (
            (* Readable EOF (a 429 then close) or a reset means the
               server got rid of us. *)
            match Unix.read fd probe 0 64 with
            | 0 ->
                close_quietly fd;
                stats.dropped <- stats.dropped + 1;
                conns.(i) <- None
            | _ -> ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                ()
            | exception Unix.Unix_error _ ->
                close_quietly fd;
                stats.dropped <- stats.dropped + 1;
                conns.(i) <- None))
      conns;
    Thread.delay 0.5
  done;
  Array.iter (function Some fd -> close_quietly fd | None -> ()) conns

(* A request head long enough that byte-at-a-time delivery never
   finishes within any realistic run. *)
let slow_request_head =
  "GET /index.html HTTP/1.1\r\nHost: hostile\r\n"
  ^ String.concat ""
      (List.init 400 (fun i -> Printf.sprintf "X-Pad-%04d: aaaaaaaa\r\n" i))
  ^ "\r\n"

(* Slow-read army (slowloris): hold [slots] connections, dribbling one
   header byte per tick on each.  The dribble keeps [last_active]
   fresh, so the idle timer never fires — only a header deadline
   breaks the hold. *)
let slowread_thread ~port ~deadline ~slots stats () =
  let conns = Array.make slots None in
  let fill i =
    match hostile_connect ~port with
    | Some fd ->
        Unix.set_nonblock fd;
        stats.opened <- stats.opened + 1;
        conns.(i) <- Some (fd, ref 0)
    | None -> ()
  in
  Array.iteri (fun i _ -> fill i) conns;
  while Unix.gettimeofday () < deadline do
    let reopen_budget = ref 30 in
    Array.iteri
      (fun i c ->
        match c with
        | None ->
            if !reopen_budget > 0 then begin
              decr reopen_budget;
              fill i
            end
        | Some (fd, pos) -> (
            if !pos >= String.length slow_request_head then pos := 0;
            match Unix.write_substring fd slow_request_head !pos 1 with
            | _ -> incr pos
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                ()
            | exception Unix.Unix_error _ ->
                close_quietly fd;
                stats.dropped <- stats.dropped + 1;
                conns.(i) <- None))
      conns;
    Thread.delay 0.15
  done;
  Array.iter (function Some (fd, _) -> close_quietly fd | None -> ()) conns

(* Disk-bound stampede: closed-loop requests for a rotating set of
   cold files, one connection per request, as fast as the server
   answers.  Every hit costs a helper job, so an unbounded queue
   swamps the victims' share of disk service. *)
let stampede_thread ~port ~deadline ~files stats () =
  let buf = Bytes.create 8192 in
  let i = ref 0 in
  while Unix.gettimeofday () < deadline do
    (match hostile_connect ~port with
    | None -> Thread.delay 0.01
    | Some fd ->
        stats.opened <- stats.opened + 1;
        incr i;
        (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
         with Unix.Unix_error _ | Invalid_argument _ -> ());
        let req =
          Printf.sprintf "GET /f%d.bin HTTP/1.0\r\nHost: hostile\r\n\r\n"
            (!i mod files)
        in
        (match Unix.write_substring fd req 0 (String.length req) with
        | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> stats.dropped <- stats.dropped + 1
            | n ->
                let head = Bytes.sub_string buf 0 (min n 12) in
                if String.length head >= 12 && String.sub head 9 3 = "200" then
                  stats.att_ok <- stats.att_ok + 1
                else stats.att_refused <- stats.att_refused + 1;
                (try
                   while Unix.read fd buf 0 (Bytes.length buf) > 0 do
                     ()
                   done
                 with Unix.Unix_error _ -> ())
            | exception Unix.Unix_error _ ->
                stats.dropped <- stats.dropped + 1)
        | exception Unix.Unix_error _ -> stats.dropped <- stats.dropped + 1);
        close_quietly fd);
    Thread.delay 0.005
  done

(* Legitimate load for hostile runs: closed-loop clients that survive
   being shed — a dropped session or refused connect counts an error,
   backs off briefly and retries, so goodput reflects what a victim
   population actually gets through, not how fast the first error
   killed the worker.  Each worker binds its own 127.0.1.x source: a
   victim population is many low-rate IPs, not one hot one, and that
   is precisely the asymmetry per-IP accounting exploits.

   Sessions are keep-alive but rotate every 100 requests: a session
   that got in before the attack established would otherwise sit out
   the connection exhaustion it is supposed to measure, while pure
   connection-per-request drowns the single-core generator in
   handshakes.  Rotation keeps the accept path honest in both arms. *)
let legit_worker ~src ~host ~port ~path ~deadline stats () =
  while Unix.gettimeofday () < deadline do
    match Flash_live.Client.Session.connect ~src ~host ~port () with
    | exception _ ->
        stats.errors <- stats.errors + 1;
        Thread.delay 0.02
    | session ->
        (try
           let n = ref 0 in
           while !n < 100 && Unix.gettimeofday () < deadline do
             incr n;
             let t0 = Unix.gettimeofday () in
             let r = Flash_live.Client.Session.request session path in
             record stats
               (Unix.gettimeofday () -. t0)
               (String.length r.Flash_live.Client.body)
               (r.Flash_live.Client.status = 200)
           done
         with _ -> stats.errors <- stats.errors + 1);
        Flash_live.Client.Session.close session
  done

type hostile_attack = Flood | Slowread | Stampede

let attack_name = function
  | Flood -> "flood"
  | Slowread -> "slowread"
  | Stampede -> "stampede"

let attack_of_string = function
  | "flood" -> Some Flood
  | "slowread" -> Some Slowread
  | "stampede" -> Some Stampede
  | _ -> None

(* A scratch docroot of our own (never the user's): one small page the
   victims hammer, plus a rotating set of larger files the stampede
   keeps cold. *)
let make_hostile_docroot () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flash-hostile-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write name n =
    let oc = open_out (Filename.concat dir name) in
    output_string oc (String.make n 'x');
    close_out oc
  in
  write "index.html" 8192;
  for i = 0 to 63 do
    write (Printf.sprintf "f%d.bin" i) 32768
  done;
  dir

let remove_hostile_docroot dir =
  match Sys.readdir dir with
  | entries ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        entries;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

let hostile_server_config ~docroot ~attack ~guarded =
  let module Server = Flash_live.Server in
  let module Guard = Flash_guard.Guard in
  let base =
    {
      (Server.default_config ~docroot) with
      Server.port = 0;
      mode = Server.Amped;
      event_backend = Evio.Select;
      (* Long enough that waiting out the idle timer is not a defense
         within the run — held flood connections must be evicted by
         policy or not at all. *)
      idle_timeout = 60.;
      trace = false;
    }
  in
  let base =
    match attack with
    | Stampede ->
        {
          base with
          Server.max_cached_file = 0 (* every read is cold disk work *);
          helpers = 2;
          slow_read = Some (fun _ -> Thread.delay 0.015);
        }
    | Flood | Slowread -> base
  in
  if not guarded then base
  else
    let g = Guard.default_config in
    let g =
      match attack with
      | Flood -> { g with Guard.max_conns_per_ip = Some 16 }
      | Slowread ->
          {
            g with
            Guard.max_conns_per_ip = Some 64;
            header_deadline = 0.5;
            min_byte_rate = 64.;
            transfer_interval = 0.5;
          }
      | Stampede ->
          (* Above any one victim's demand, far below the attacker's;
             the queue bound is the backstop against whatever the rate
             cap still admits. *)
          {
            g with
            Guard.max_rps_per_ip = Some 20.;
            max_helper_queue = Some 32;
          }
    in
    { base with Server.guard = g }

type hostile_arm = {
  arm_name : string;
  goodput_rps : float;
  legit_ok : int;
  legit_errors : int;
  legit_p99_ms : float;
  arm_shed_total : int;
  arm_sheds : (string * int) list;
  arm_helper_hwm : int;
  arm_helper_rejected : int;
  attacker : attacker_stats option;
}

let shed_reason_labels =
  [
    "admission";
    "cgi_limit";
    "conn_limit";
    "helper_queue";
    "idle_reap";
    "rate_limit";
    "slow_client";
    "slow_header";
  ]

let run_hostile_arm ~docroot ~attack ~arm_name ~guarded ~with_attack ~duration
    ~clients =
  let module Server = Flash_live.Server in
  let config = hostile_server_config ~docroot ~attack ~guarded in
  let server = Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let host = "127.0.0.1" and port = Server.port server in
      (try ignore (Flash_live.Client.get ~host ~port "/index.html")
       with _ -> ());
      let establish =
        if not with_attack then 0.
        else match attack with Flood | Slowread -> 2.0 | Stampede -> 0.7
      in
      let legit_deadline = Unix.gettimeofday () +. establish +. duration in
      (* Attackers outlive the victims slightly so goodput is measured
         under pressure end to end. *)
      let attack_deadline = legit_deadline +. 1.0 in
      let attacker_threads, attacker_stats =
        if not with_attack then ([], [])
        else
          let spawn n f =
            List.init n (fun _ ->
                let s = new_attacker_stats () in
                (Thread.create (f s) (), s))
          in
          let pairs =
            match attack with
            | Flood ->
                spawn 4 (fun s ->
                    flood_thread ~port ~deadline:attack_deadline ~slots:300 s)
            | Slowread ->
                spawn 4 (fun s ->
                    slowread_thread ~port ~deadline:attack_deadline ~slots:300
                      s)
            | Stampede ->
                spawn 32 (fun s ->
                    stampede_thread ~port ~deadline:attack_deadline ~files:64 s)
          in
          (List.map fst pairs, List.map snd pairs)
      in
      (* Let the attack establish before the victims arrive; the
         occupancy attacks need time to fill their slots. *)
      if establish > 0. then Thread.delay establish;
      let stats = Array.init clients (fun _ -> new_stats ()) in
      let t0 = Unix.gettimeofday () in
      let legit_threads =
        List.init clients (fun i ->
            Thread.create
              (legit_worker
                 ~src:(Printf.sprintf "127.0.1.%d" ((i mod 250) + 1))
                 ~host ~port ~path:"/index.html" ~deadline:legit_deadline
                 stats.(i))
              ())
      in
      List.iter Thread.join legit_threads;
      let elapsed = Unix.gettimeofday () -. t0 in
      List.iter Thread.join attacker_threads;
      (* Scrape after the attack ends: the counters are cumulative, and
         an exhausted server cannot answer the scrape mid-flood. *)
      let rec scrape_retry n =
        match scrape_status ~host ~port "/server-status" with
        | Some body -> Some body
        | None ->
            if n <= 1 then None
            else begin
              Thread.delay 0.25;
              scrape_retry (n - 1)
            end
      in
      let status = scrape_retry 10 in
      let completed =
        Array.fold_left (fun acc s -> acc + s.completed) 0 stats
      in
      let errors = Array.fold_left (fun acc s -> acc + s.errors) 0 stats in
      let latency =
        Array.fold_left
          (fun acc s -> Obs.Histogram.merge acc s.latencies)
          (Obs.Histogram.create ()) stats
      in
      let sint key =
        match status with
        | Some body -> Option.value (json_int body key) ~default:0
        | None -> 0
      in
      {
        arm_name;
        goodput_rps = float_of_int completed /. elapsed;
        legit_ok = completed;
        legit_errors = errors;
        legit_p99_ms = 1000. *. Obs.Histogram.percentile latency 99.;
        arm_shed_total = sint "shed_total";
        arm_sheds =
          (if guarded then
             List.map (fun l -> (l, sint l)) shed_reason_labels
           else []);
        arm_helper_hwm = sint "flash_helper_queue_depth_hwm";
        arm_helper_rejected = sint "flash_helper_rejected_total";
        attacker =
          (match attacker_stats with
          | [] -> None
          | l -> Some (sum_attacker_stats l));
      })

let hostile_arm_json a =
  let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0" in
  let attacker_json =
    match a.attacker with
    | None -> "null"
    | Some s ->
        Printf.sprintf
          {|{"opened":%d,"dropped":%d,"ok":%d,"refused":%d}|}
          s.opened s.dropped s.att_ok s.att_refused
  in
  Printf.sprintf
    {|{"arm":%S,"goodput_rps":%s,"completed":%d,"errors":%d,"latency_p99_ms":%s,"shed_total":%d,"sheds":{%s},"helper_queue_hwm":%d,"helper_rejected":%d,"attacker":%s}|}
    a.arm_name (num a.goodput_rps) a.legit_ok a.legit_errors
    (num a.legit_p99_ms) a.arm_shed_total
    (String.concat ","
       (List.map (fun (l, v) -> Printf.sprintf "%S:%d" l v) a.arm_sheds))
    a.arm_helper_hwm a.arm_helper_rejected attacker_json

let run_hostile ~attack ~duration ~clients ~json_file =
  let docroot = make_hostile_docroot () in
  Fun.protect
    ~finally:(fun () -> remove_hostile_docroot docroot)
    (fun () ->
      Format.printf
        "flash-bench: hostile %s — %d legit clients, %.1fs per arm \
         (attackers from %s)@."
        (attack_name attack) clients duration attacker_src;
      let arm name ~guarded ~with_attack =
        let r =
          run_hostile_arm ~docroot ~attack ~arm_name:name ~guarded ~with_attack
            ~duration ~clients
        in
        Format.printf
          "%-10s %8.1f req/s goodput (%d ok, %d errors, p99 %.1f ms%s)@."
          (name ^ ":") r.goodput_rps r.legit_ok r.legit_errors r.legit_p99_ms
          (if guarded then Printf.sprintf ", %d shed" r.arm_shed_total else "");
        r
      in
      let baseline = arm "baseline" ~guarded:false ~with_attack:false in
      let unguarded = arm "unguarded" ~guarded:false ~with_attack:true in
      let guarded = arm "guarded" ~guarded:true ~with_attack:true in
      let ratio a =
        if baseline.goodput_rps > 0. then a.goodput_rps /. baseline.goodput_rps
        else 0.
      in
      Format.printf
        "verdict:    unguarded keeps %.0f%% of baseline goodput, guarded \
         keeps %.0f%%@."
        (100. *. ratio unguarded)
        (100. *. ratio guarded);
      (match json_file with
      | Some file ->
          let num f =
            if Float.is_finite f then Printf.sprintf "%.6g" f else "0"
          in
          let body =
            Printf.sprintf
              {|{"hostile":%S,"duration_s":%s,"legit_clients":%d,"arms":[%s],"unguarded_vs_baseline":%s,"guarded_vs_baseline":%s}|}
              (attack_name attack) (num duration) clients
              (String.concat ","
                 (List.map hostile_arm_json [ baseline; unguarded; guarded ]))
              (num (ratio unguarded))
              (num (ratio guarded))
            ^ "\n"
          in
          let oc = open_out file in
          output_string oc body;
          close_out oc;
          Format.printf "json:       wrote %s@." file
      | None -> ()))

(* ------------------------------------------------------------------ *)
(* Cold-start scenario: predictive warming, measured live.

   Three phases against in-process servers sharing one scratch docroot
   and one Zipf request stream: a recording run writes the machine-
   minable access log; then two fresh (cold-cache) servers serve the
   same stream — one demand-fill, one warming from the recorded log —
   and the early-window cache hit rates are compared.  The prefetches
   ride the helper pool's low-priority lane, so the client-visible
   helper job p99 (scraped from the server's own status JSON, which
   excludes low-priority jobs by construction) should be unchanged
   between the arms — that figure is reported alongside the delta.    *)
(* ------------------------------------------------------------------ *)

let json_float s key =
  match find_sub s (Printf.sprintf "%S:" key) with
  | None -> None
  | Some i ->
      let n = String.length s in
      let j = ref i in
      while
        !j < n
        &&
        match s.[!j] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        incr j
      done;
      float_of_string_opt (String.sub s i (!j - i))

(* The helper block's job-latency p99 (ms).  The key "p99" appears in
   several histogram blocks, so anchor on the helper's own
   "job_latency_ms" object first. *)
let helper_p99_ms body =
  match find_sub body "\"job_latency_ms\"" with
  | None -> None
  | Some i -> json_float (String.sub body i (String.length body - i)) "p99"

let coldstart_files = 2000

let make_coldstart_docroot () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "flash-coldstart-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  for i = 0 to coldstart_files - 1 do
    let oc = open_out (Filename.concat dir (Printf.sprintf "z%d.bin" i)) in
    output_string oc (String.make (2048 + (i mod 23 * 512)) 'z');
    close_out oc
  done;
  dir

(* Closed-loop Zipf client: each request samples a rank, so the stream
   has the popularity skew the miner is supposed to exploit.  Sessions
   rotate every 200 requests to keep the accept path exercised. *)
let coldstart_worker ~host ~port ~zipf ~seed ~deadline stats () =
  let rng = Sim.Rng.create ~seed in
  while Unix.gettimeofday () < deadline do
    match Flash_live.Client.Session.connect ~host ~port () with
    | exception _ ->
        stats.errors <- stats.errors + 1;
        Thread.delay 0.02
    | session ->
        (try
           let n = ref 0 in
           while !n < 200 && Unix.gettimeofday () < deadline do
             incr n;
             let path =
               Printf.sprintf "/z%d.bin" (Workload.Zipf.sample zipf rng)
             in
             let t0 = Unix.gettimeofday () in
             let r = Flash_live.Client.Session.request session path in
             record stats
               (Unix.gettimeofday () -. t0)
               (String.length r.Flash_live.Client.body)
               (r.Flash_live.Client.status = 200)
           done
         with _ -> stats.errors <- stats.errors + 1);
        Flash_live.Client.Session.close session
  done

type coldstart_arm = {
  ca_name : string;
  ca_completed : int;
  ca_errors : int;
  ca_early_hit_rate : float;  (* cache hit rate inside the early window *)
  ca_final_hit_rate : float;
  ca_helper_p99_ms : float;
  ca_prefetch_issued : int;
  ca_prefetch_completed : int;
  ca_hits_after_warm : int;
  ca_pinned_entries : int;
}

let coldstart_hit_rate body =
  (* The first "hits"/"misses" pair in the status JSON is the top-level
     file-cache block. *)
  match (json_int body "hits", json_int body "misses") with
  | Some h, Some m when h + m > 0 ->
      float_of_int h /. float_of_int (h + m)
  | _ -> 0.

let run_coldstart_load ~host ~port ~zipf ~clients ~duration =
  let deadline = Unix.gettimeofday () +. duration in
  let stats = Array.init clients (fun _ -> new_stats ()) in
  let threads =
    List.init clients (fun i ->
        Thread.create
          (coldstart_worker ~host ~port ~zipf ~seed:(1000 + i) ~deadline
             stats.(i))
          ())
  in
  (* Sample the cache counters mid-run: the early window is where a
     demand-fill cache is still paying its cold misses. *)
  let early = ref None in
  let sampler =
    Thread.create
      (fun () ->
        Thread.delay (Float.min 1.0 (duration /. 2.));
        early := scrape_status ~host ~port "/server-status")
      ()
  in
  List.iter Thread.join threads;
  Thread.join sampler;
  (stats, !early)

let run_coldstart_arm ~docroot ~zipf ~clients ~duration ~warm_log name =
  let module Server = Flash_live.Server in
  let config =
    {
      (Server.default_config ~docroot) with
      Server.port = 0;
      mode = Server.Amped;
      trace = false;
      warm = warm_log <> None;
      warm_log;
      warm_interval = 0.2;
      warm_budget = 0.6;
      warm_top_k = 2048;
    }
  in
  let server = Server.start_background config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let host = "127.0.0.1" and port = Server.port server in
      (* Warming arm: let the startup mining's prefetches finish before
         traffic arrives — the whole point is a pre-populated cache.
         The low-priority lane issues a bounded batch per mining cycle,
         so "done" is not settled-equals-issued (true between every
         batch) but issued holding still across several cycles while
         everything issued has settled. *)
      if warm_log <> None then begin
        let rec wait n stable last_issued =
          if n > 0 && stable < 4 then begin
            Thread.delay 0.25;
            match scrape_status ~host ~port "/server-status" with
            | Some body ->
                let issued =
                  Option.value (json_int body "prefetch_issued") ~default:0
                in
                let settled =
                  Option.value (json_int body "prefetch_completed") ~default:0
                  + Option.value (json_int body "prefetch_failed") ~default:0
                in
                if issued > 0 && settled >= issued && issued = last_issued
                then wait (n - 1) (stable + 1) issued
                else wait (n - 1) 0 issued
            | None -> wait (n - 1) 0 last_issued
          end
        in
        wait 120 0 (-1)
      end;
      let stats, early =
        run_coldstart_load ~host ~port ~zipf ~clients ~duration
      in
      let final = scrape_status ~host ~port "/server-status" in
      let completed =
        Array.fold_left (fun acc s -> acc + s.completed) 0 stats
      in
      let errors = Array.fold_left (fun acc s -> acc + s.errors) 0 stats in
      let fint key =
        match final with
        | Some body -> Option.value (json_int body key) ~default:0
        | None -> 0
      in
      {
        ca_name = name;
        ca_completed = completed;
        ca_errors = errors;
        ca_early_hit_rate =
          (match early with Some b -> coldstart_hit_rate b | None -> 0.);
        ca_final_hit_rate =
          (match final with Some b -> coldstart_hit_rate b | None -> 0.);
        ca_helper_p99_ms =
          (match final with
          | Some b -> Option.value (helper_p99_ms b) ~default:0.
          | None -> 0.);
        ca_prefetch_issued = fint "prefetch_issued";
        ca_prefetch_completed = fint "prefetch_completed";
        ca_hits_after_warm = fint "hits_after_warm";
        ca_pinned_entries = fint "pinned_entries";
      })

let coldstart_arm_json a =
  let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "0" in
  Printf.sprintf
    {|{"arm":%S,"completed":%d,"errors":%d,"early_hit_rate":%s,"final_hit_rate":%s,"helper_p99_ms":%s,"prefetch_issued":%d,"prefetch_completed":%d,"hits_after_warm":%d,"pinned_entries":%d}|}
    a.ca_name a.ca_completed a.ca_errors
    (num a.ca_early_hit_rate)
    (num a.ca_final_hit_rate)
    (num a.ca_helper_p99_ms)
    a.ca_prefetch_issued a.ca_prefetch_completed a.ca_hits_after_warm
    a.ca_pinned_entries

let run_coldstart ~duration ~clients ~json_file =
  let module Server = Flash_live.Server in
  let docroot = make_coldstart_docroot () in
  let access_log = Filename.concat docroot "access.log" in
  Fun.protect
    ~finally:(fun () -> remove_hostile_docroot docroot)
    (fun () ->
      Format.printf
        "flash-bench: coldstart — %d Zipf clients over %d files, %.1fs \
         per arm@."
        clients coldstart_files duration;
      let zipf = Workload.Zipf.create ~n:coldstart_files ~alpha:1.0 in
      (* Phase 1: record an access log with the machine-minable resolved
         path field — yesterday's traffic for the warming arm to mine. *)
      let recorded =
        let config =
          {
            (Server.default_config ~docroot) with
            Server.port = 0;
            mode = Server.Amped;
            trace = false;
            access_log = Some access_log;
            access_log_paths = true;
          }
        in
        let server = Server.start_background config in
        Fun.protect
          ~finally:(fun () -> Server.stop server)
          (fun () ->
            let stats, _ =
              run_coldstart_load ~host:"127.0.0.1" ~port:(Server.port server)
                ~zipf ~clients ~duration
            in
            Array.fold_left (fun acc s -> acc + s.completed) 0 stats)
      in
      Format.printf "recorded:   %d requests into %s@." recorded access_log;
      let unwarmed =
        run_coldstart_arm ~docroot ~zipf ~clients ~duration ~warm_log:None
          "unwarmed"
      in
      let warmed =
        run_coldstart_arm ~docroot ~zipf ~clients ~duration
          ~warm_log:(Some access_log) "warmed"
      in
      let report a =
        Format.printf
          "%-10s early hit rate %5.1f%%, final %5.1f%%, helper p99 %.2f ms \
           (%d ok, %d errors%s)@."
          (a.ca_name ^ ":")
          (100. *. a.ca_early_hit_rate)
          (100. *. a.ca_final_hit_rate)
          a.ca_helper_p99_ms a.ca_completed a.ca_errors
          (if a.ca_prefetch_issued > 0 then
             Printf.sprintf ", %d/%d prefetches done, %d pinned, %d hits \
                             after warm"
               a.ca_prefetch_completed a.ca_prefetch_issued a.ca_pinned_entries
               a.ca_hits_after_warm
           else "")
      in
      report unwarmed;
      report warmed;
      Format.printf "verdict:    warming moves the early hit rate %+.1f \
                     points@."
        (100. *. (warmed.ca_early_hit_rate -. unwarmed.ca_early_hit_rate));
      (match json_file with
      | Some file ->
          let num f =
            if Float.is_finite f then Printf.sprintf "%.6g" f else "0"
          in
          let body =
            Printf.sprintf
              {|{"scenario":"coldstart","duration_s":%s,"clients":%d,"files":%d,"recorded_requests":%d,"arms":[%s],"early_delta":%s}|}
              (num duration) clients coldstart_files recorded
              (String.concat ","
                 (List.map coldstart_arm_json [ unwarmed; warmed ]))
              (num (warmed.ca_early_hit_rate -. unwarmed.ca_early_hit_rate))
            ^ "\n"
          in
          let oc = open_out file in
          output_string oc body;
          close_out oc;
          Format.printf "json:       wrote %s@." file
      | None -> ());
      if unwarmed.ca_errors + warmed.ca_errors > 0 then exit 1)

let host =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Server host.")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port"; "p" ] ~docv:"PORT"
        ~doc:
          "Server port.  Required unless $(b,--sweep-domains) is given \
           (the sweep starts its own in-process servers).")

let path =
  Arg.(value & opt string "/" & info [ "path" ] ~docv:"PATH" ~doc:"Request target.")

let clients =
  Arg.(value & opt int 8 & info [ "clients"; "c" ] ~docv:"N" ~doc:"Concurrent clients.")

let client_workers =
  Arg.(
    value & opt int 1
    & info [ "client-workers"; "w" ] ~docv:"K"
        ~doc:
          "Spread the clients over $(docv) OCaml domains.  The default \
           single-domain generator serialises all client threads behind \
           one runtime lock; benchmarking a multi-domain (sharded) \
           server needs a generator that can scale past one core too.")

let duration =
  Arg.(value & opt float 5. & info [ "duration"; "t" ] ~docv:"SEC" ~doc:"Test duration.")

let keep_alive =
  Arg.(value & flag & info [ "keep-alive"; "k" ] ~doc:"Reuse connections (HTTP/1.1).")

let scenario =
  Arg.(
    value & opt string "full"
    & info [ "scenario" ] ~docv:"KIND"
        ~doc:
          "Request shape: full (plain 200s, default); conditional \
           (revalidate with If-None-Match, expecting 304s — the \
           warm-client-cache steady state); range (Range: bytes=0-1023, \
           expecting 206s — the resumed-download shape); coldstart \
           (in-process cold-start comparison — record an access log, \
           then measure the early-window hit rate of a fresh demand-fill \
           server against one warming from that log; ignores \
           $(b,--host)/$(b,--port)).")

let idle_connections =
  Arg.(
    value & opt int 0
    & info [ "connections"; "idle" ] ~docv:"N"
        ~doc:
          "Additionally hold $(docv) warm, idle keep-alive connections \
           open for the whole run (the many-idle-connections scenario \
           event backends are compared on).")

let json_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write results as JSON to $(docv).")

let status_path =
  Arg.(
    value
    & opt string "/server-status"
    & info [ "server-status" ] ~docv:"PATH"
        ~doc:
          "Server status endpoint to scrape before/after the run for \
           syscalls-per-request and copies-per-request figures.")

let no_server_stats =
  Arg.(
    value & flag
    & info [ "no-server-stats" ]
        ~doc:"Skip scraping the server status endpoint.")

let sweep_domains =
  Arg.(
    value
    & opt (some int) None
    & info [ "sweep-domains" ] ~docv:"N"
        ~doc:
          "Domain-scaling sweep: start an in-process sharded server for \
           each domain count 1..$(docv), bench each for $(b,--duration) \
           seconds, and report the scaling curve.  Needs $(b,--docroot); \
           ignores $(b,--host)/$(b,--port).")

let docroot =
  Arg.(
    value
    & opt (some string) None
    & info [ "docroot" ] ~docv:"DIR"
        ~doc:"Document root for the sweep's in-process servers.")

let sweep_backend =
  let backend_conv =
    let parse s =
      match Evio.of_string s with
      | Ok kind -> Ok kind
      | Error msg -> Error (`Msg msg)
    in
    let print ppf kind = Format.pp_print_string ppf (Evio.name kind) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt backend_conv Evio.Select
    & info [ "sweep-backend" ] ~docv:"BACKEND"
        ~doc:
          "Event-readiness backend for the sweep's servers \
           (select|poll|epoll; default select).")

let hostile =
  Arg.(
    value
    & opt (some string) None
    & info [ "hostile" ] ~docv:"ATTACK"
        ~doc:
          "Overload-survival scenario: run three in-process arms \
           (baseline, unguarded, guarded) of $(b,--duration) seconds \
           each and compare legit goodput.  $(docv) is one of: flood \
           (held-connection flood past the readiness backend's fd \
           capacity); slowread (slowloris army dribbling header bytes, \
           invisible to the idle timer); stampede (closed-loop \
           cold-file requests swamping the bounded helper queue).  \
           Attackers source from 127.0.0.2 so per-IP limits can tell \
           them from the victims.  Uses its own scratch docroot; \
           ignores $(b,--host)/$(b,--port).")

let main host port path clients client_workers duration keep_alive scenario
    idle_connections json_file status_path no_server_stats sweep_domains
    docroot sweep_backend hostile =
  match hostile with
  | Some kind -> (
      match attack_of_string kind with
      | Some attack -> run_hostile ~attack ~duration ~clients ~json_file
      | None ->
          Format.eprintf "unknown attack %S (flood|slowread|stampede)@." kind;
          exit 2)
  | None when scenario = "coldstart" ->
      (* In-process arms, like --hostile: ignores --host/--port. *)
      run_coldstart ~duration ~clients ~json_file
  | None -> (
  match sweep_domains with
  | Some max_domains ->
      if max_domains < 1 then begin
        Format.eprintf "--sweep-domains must be at least 1@.";
        exit 2
      end;
      let docroot =
        match docroot with
        | Some d -> d
        | None ->
            Format.eprintf "--sweep-domains needs --docroot DIR@.";
            exit 2
      in
      run_sweep ~docroot ~backend:sweep_backend ~max_domains ~path ~clients
        ~client_workers ~duration ~keep_alive ~json_file
  | None -> (
      match port with
      | Some port ->
          run host port path clients client_workers duration keep_alive
            scenario idle_connections json_file status_path no_server_stats
      | None ->
          Format.eprintf "--port is required unless --sweep-domains is given@.";
          exit 2))

let cmd =
  let doc = "closed-loop HTTP load generator (for the live Flash server)" in
  Cmd.v (Cmd.info "flash-bench" ~doc)
    Term.(
      const main $ host $ port $ path $ clients $ client_workers $ duration
      $ keep_alive $ scenario $ idle_connections $ json_file $ status_path
      $ no_server_stats $ sweep_domains $ docroot $ sweep_backend $ hostile)

let () = exit (Cmd.eval cmd)
